#pragma once
// Fixed-bucket log-scale latency histogram (HDR-histogram style).
//
// Values (nanoseconds, or any uint64 quantity) land in one of 512
// buckets: 8 linear sub-buckets per power-of-two octave (kSubBits = 3),
// so every bucket's width is at most 1/8 of its lower bound — quantile
// estimates carry ≤ 12.5% relative error by construction, independent of
// the value range. No allocation after construction, no locks: record()
// is two relaxed fetch_adds plus bounded min/max CAS loops, safe from any
// number of threads. Shards (one histogram per thread/lane) merge via
// HistogramSnapshot::merge; windowed views subtract via delta().
//
// This is the always-on half of the observability plane: unlike trace
// events these are not gated, because a record() is cheaper than the
// clock read the caller already paid for. ServiceStats' p50/p99 fields
// (ROADMAP direction 1's prerequisite) are computed from these snapshots.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace apm::obs {

inline constexpr int kHistSubBits = 3;                       // 8 sub-buckets/octave
inline constexpr int kHistSubCount = 1 << kHistSubBits;      // 8
inline constexpr int kHistBuckets = 512;                     // covers all of uint64

// Bucket index for a value. Values < 8 map to their own bucket (exact);
// larger values map to (octave, top-3-bits-below-msb).
inline int hist_bucket_index(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kHistSubCount)) return static_cast<int>(v);
  const int msb = 63 - __builtin_clzll(v);
  const int group = msb - kHistSubBits + 1;
  const int sub = static_cast<int>((v >> (msb - kHistSubBits)) &
                                   (kHistSubCount - 1));
  return (group << kHistSubBits) | sub;
}

// Smallest value mapping to bucket `idx`.
inline std::uint64_t hist_bucket_lower(int idx) {
  if (idx < kHistSubCount) return static_cast<std::uint64_t>(idx);
  const int group = idx >> kHistSubBits;
  const int sub = idx & (kHistSubCount - 1);
  return static_cast<std::uint64_t>(kHistSubCount + sub) << (group - 1);
}

// Width of bucket `idx` (number of distinct values it absorbs).
inline std::uint64_t hist_bucket_width(int idx) {
  if (idx < kHistSubCount) return 1;
  return std::uint64_t{1} << ((idx >> kHistSubBits) - 1);
}

// Immutable copy of a histogram's state. Cheap to merge, subtract, and
// query; all quantile math happens here so the live histogram stays a
// plain array of atomics.
struct HistogramSnapshot {
  std::uint64_t buckets[kHistBuckets] = {};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // exact (not bucket-rounded); 0 when empty
  std::uint64_t max = 0;

  bool empty() const { return count == 0; }
  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }

  // Quantile estimate for q in [0, 1]: walks buckets to the target rank
  // and interpolates linearly inside the landing bucket; clamped to the
  // exact observed [min, max]. q=0 → min, q=1 → max.
  double quantile(double q) const;

  // Fold another shard into this one (bucket-wise add; min/max widen).
  void merge(const HistogramSnapshot& other);

  // This snapshot minus an earlier baseline of the SAME histogram —
  // the window of records between the two. Bucket-wise monotonic
  // subtraction (clamped at 0); min/max fall back to bucket bounds of
  // the window since exact extremes of a window are not recoverable.
  HistogramSnapshot delta(const HistogramSnapshot& base) const;
};

// Live, thread-safe histogram. record() never allocates or locks.
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(std::uint64_t value) {
    buckets_[hist_bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  void update_min(std::uint64_t v) {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::uint64_t> buckets_[kHistBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

// One-line human-readable summary: "count=N mean=... p50=... p90=...
// p99=... max=..." with values scaled by `scale` (e.g. 1e-3 for ns→µs)
// and labelled with `unit`.
std::string describe_histogram(const HistogramSnapshot& snap, double scale,
                               const char* unit);

}  // namespace apm::obs
