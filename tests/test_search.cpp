// Scheme-level search tests: tactical correctness (winning/blocking moves
// on TicTacToe), cross-scheme agreement, visit conservation, virtual-loss
// cleanliness, single-worker equivalence with the serial reference.

#include <gtest/gtest.h>

#include <tuple>

#include "eval/net_evaluator.hpp"
#include "games/gomoku.hpp"
#include "mcts/engine.hpp"
#include "mcts/factory.hpp"

namespace apm {
namespace {

MctsConfig quick_config(int playouts) {
  MctsConfig cfg;
  cfg.num_playouts = playouts;
  cfg.c_puct = 3.0f;
  cfg.seed = 77;
  return cfg;
}

// Position where X (to move) wins immediately at action 2.
Gomoku x_wins_at_2() {
  Gomoku g = make_tictactoe();
  g.apply(0);  // X
  g.apply(3);  // O
  g.apply(1);  // X
  g.apply(4);  // O  → X completes the top row with 2
  return g;
}

// Position where O (to move) must block X at action 2.
Gomoku o_blocks_at_2() {
  Gomoku g = make_tictactoe();
  g.apply(0);  // X
  g.apply(3);  // O
  g.apply(1);  // X  → X threatens 0-1-2; O to move must take 2
  return g;
}

class SchemeWorkerMatrix
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(SchemeWorkerMatrix, FindsImmediateWin) {
  const auto [scheme, workers] = GetParam();
  const Gomoku g = x_wins_at_2();
  UniformEvaluator eval(g.action_count(), g.encode_size());
  auto search = make_search(scheme, quick_config(300), workers,
                            {.evaluator = &eval});
  const SearchResult r = search->search(g);
  EXPECT_EQ(r.best_action, 2) << to_string(scheme) << " N=" << workers;
}

TEST_P(SchemeWorkerMatrix, BlocksOpponentWin) {
  const auto [scheme, workers] = GetParam();
  const Gomoku g = o_blocks_at_2();
  UniformEvaluator eval(g.action_count(), g.encode_size());
  auto search = make_search(scheme, quick_config(600), workers,
                            {.evaluator = &eval});
  const SearchResult r = search->search(g);
  EXPECT_EQ(r.best_action, 2) << to_string(scheme) << " N=" << workers;
}

TEST_P(SchemeWorkerMatrix, ActionPriorIsDistributionOverLegalMoves) {
  const auto [scheme, workers] = GetParam();
  Gomoku g(5, 4);
  g.apply(12);
  UniformEvaluator eval(g.action_count(), g.encode_size());
  auto search = make_search(scheme, quick_config(200), workers,
                            {.evaluator = &eval});
  const SearchResult r = search->search(g);
  float total = 0.0f;
  for (std::size_t a = 0; a < r.action_prior.size(); ++a) {
    ASSERT_GE(r.action_prior[a], 0.0f);
    total += r.action_prior[a];
  }
  EXPECT_NEAR(total, 1.0f, 1e-4f);
  EXPECT_EQ(r.action_prior[12], 0.0f);  // occupied cell never visited
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeWorkerMatrix,
    ::testing::Values(std::tuple{Scheme::kSerial, 1},
                      std::tuple{Scheme::kSharedTree, 2},
                      std::tuple{Scheme::kSharedTree, 8},
                      std::tuple{Scheme::kLocalTree, 2},
                      std::tuple{Scheme::kLocalTree, 8},
                      std::tuple{Scheme::kLeafParallel, 4},
                      std::tuple{Scheme::kRootParallel, 4}),
    [](const auto& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      name += "_w";
      name += std::to_string(std::get<1>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(SerialMcts, DeterministicAcrossRuns) {
  Gomoku g(5, 4);
  UniformEvaluator eval(g.action_count(), g.encode_size());
  SerialMcts s1(quick_config(200), eval);
  SerialMcts s2(quick_config(200), eval);
  const SearchResult r1 = s1.search(g);
  const SearchResult r2 = s2.search(g);
  EXPECT_EQ(r1.best_action, r2.best_action);
  EXPECT_EQ(r1.action_prior, r2.action_prior);
}

TEST(SharedTreeMcts, OneWorkerMatchesSerial) {
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size());
  SerialMcts serial(quick_config(200), eval);
  SharedTreeMcts shared(quick_config(200), 1, eval);
  EXPECT_EQ(serial.search(g).action_prior, shared.search(g).action_prior);
}

TEST(LocalTreeMcts, OneWorkerMatchesSerial) {
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size());
  SerialMcts serial(quick_config(200), eval);
  LocalTreeMcts local(quick_config(200), 1, eval);
  EXPECT_EQ(serial.search(g).action_prior, local.search(g).action_prior);
}

class ParallelInvariants
    : public ::testing::TestWithParam<std::tuple<Scheme, int, LockMode>> {};

TEST_P(ParallelInvariants, VisitConservationAndCleanVirtualLoss) {
  const auto [scheme, workers, lock_mode] = GetParam();
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size(),
                          /*latency_us=*/20.0);
  MctsConfig cfg = quick_config(240);
  cfg.lock_mode = lock_mode;
  auto search = make_search(scheme, cfg, workers, {.evaluator = &eval});
  const SearchResult r = search->search(g);

  // Every playout backs up exactly one visit through the root.
  float visit_mass = 0.0f;
  for (float p : r.action_prior) visit_mass += p;
  EXPECT_NEAR(visit_mass, 1.0f, 1e-4f);
  EXPECT_EQ(r.metrics.playouts, 240);
  // Root value is a mean of values in [−1, 1].
  EXPECT_GE(r.root_value, -1.0f);
  EXPECT_LE(r.root_value, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelInvariants,
    ::testing::Values(
        std::tuple{Scheme::kSharedTree, 4, LockMode::kPerNode},
        std::tuple{Scheme::kSharedTree, 4, LockMode::kCoarse},
        std::tuple{Scheme::kSharedTree, 16, LockMode::kPerNode},
        std::tuple{Scheme::kLocalTree, 4, LockMode::kPerNode},
        std::tuple{Scheme::kLocalTree, 16, LockMode::kPerNode}),
    [](const auto& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      name += "_w";
      name += std::to_string(std::get<1>(param_info.param));
      name += std::get<2>(param_info.param) == LockMode::kCoarse
                  ? "_coarse"
                  : "_pernode";
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(SearchMetrics, PhaseTimesAndCountsPopulated) {
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size(), 5.0);
  SerialMcts search(quick_config(100), eval);
  const SearchResult r = search.search(g);
  EXPECT_GT(r.metrics.move_seconds, 0.0);
  EXPECT_GT(r.metrics.select_seconds, 0.0);
  EXPECT_GT(r.metrics.eval_seconds, 0.0);
  EXPECT_GT(r.metrics.nodes, 1u);
  EXPECT_GT(r.metrics.amortized_iteration_us(), 0.0);
  EXPECT_EQ(r.metrics.eval_requests + r.metrics.terminal_rollouts, 100u);
}

TEST(SearchOnTerminalHeavyPosition, TerminalRolloutsCounted) {
  // Nearly-finished board: most rollouts end at terminal states.
  Gomoku g = make_tictactoe();
  for (int m : {0, 3, 1, 4}) g.apply(m);  // X one move from winning
  UniformEvaluator eval(g.action_count(), g.encode_size());
  SerialMcts search(quick_config(200), eval);
  const SearchResult r = search.search(g);
  EXPECT_GT(r.metrics.terminal_rollouts, 0u);
  EXPECT_EQ(r.best_action, 2);
}

TEST(GpuBatchedSearch, SharedTreeWithFullBatchQueue) {
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size());
  GpuTimingModel model;
  SimGpuBackend backend(eval, model);
  AsyncBatchEvaluator batch(backend, /*threshold=*/8, /*streams=*/1,
                            /*stale_flush_us=*/300.0);
  SharedTreeMcts search(quick_config(160), 8, batch);
  const SearchResult r = search.search(g);
  EXPECT_GE(r.metrics.batch.batches, 1u);
  // +1: the root evaluation also flows through the queue.
  EXPECT_EQ(r.metrics.batch.submitted, r.metrics.eval_requests + 1u);
  EXPECT_LE(r.metrics.batch.max_batch, 8u);
  float mass = 0;
  for (float p : r.action_prior) mass += p;
  EXPECT_NEAR(mass, 1.0f, 1e-4f);
}

TEST(GpuBatchedSearch, LocalTreeSubBatching) {
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size());
  GpuTimingModel model;
  SimGpuBackend backend(eval, model);
  AsyncBatchEvaluator batch(backend, /*threshold=*/4, /*streams=*/2,
                            /*stale_flush_us=*/300.0);
  LocalTreeMcts search(quick_config(160), 16, batch);
  const SearchResult r = search.search(g);
  EXPECT_GE(r.metrics.batch.batches, 160u / 16);
  EXPECT_LE(r.metrics.batch.max_batch, 4u);
}

TEST(NetBackedSearch, RealNetworkOnSmallBoard) {
  Gomoku g(5, 4);
  PolicyValueNet net(NetConfig::tiny(5), 3);
  NetEvaluator eval(net);
  SerialMcts search(quick_config(60), eval);
  const SearchResult r = search.search(g);
  EXPECT_GE(r.best_action, 0);
  EXPECT_LT(r.best_action, 25);
  EXPECT_GT(r.metrics.eval_requests, 0u);
}

// --- cross-move tree reuse ---------------------------------------------------

TEST(TreeReuse, ReusedSerialSearchIsDeterministic) {
  // Two independent arenas driven through the same search → advance_root →
  // reused-search sequence must produce identical results at every move:
  // the reused search is a pure function of (config, position, kept tree),
  // not of instance state.
  Gomoku g(5, 4);
  UniformEvaluator eval(g.action_count(), g.encode_size());
  auto play = [&](std::vector<SearchResult>& out) {
    SearchTree arena;
    SerialMcts search(quick_config(200), eval, &arena);
    auto env = g.clone();
    for (int move = 0; move < 3; ++move) {
      const SearchResult r = search.search(*env);
      out.push_back(r);
      env->apply(r.best_action);
      arena.advance_root(r.best_action);
      search.set_reuse_next(true);
    }
  };
  std::vector<SearchResult> a, b;
  play(a);
  play(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].best_action, b[i].best_action) << "move " << i;
    EXPECT_EQ(a[i].action_prior, b[i].action_prior) << "move " << i;
  }
  // Moves after the first actually reused a subtree.
  EXPECT_GT(a[1].metrics.reused_nodes, 0u);
  EXPECT_GT(a[1].metrics.reused_visits, 0);
}

TEST(TreeReuse, FewerExpansionsThanFreshTreeAtEqualBudget) {
  // Equal per-move playout target (root visit mass): the reuse engine
  // credits the carried subtree's visits against the budget, so it runs
  // measurably fewer expansions per move than the fresh-tree engine while
  // ending at the same root visit total.
  Gomoku g(5, 4);
  // Value-bearing evaluator + low exploration so visits concentrate on the
  // principal variation — the subtree a real (trained-net) search carries.
  SyntheticEvaluator eval(g.action_count(), g.encode_size());
  MctsConfig cfg = quick_config(300);
  cfg.c_puct = 1.0f;

  // Fixed trajectory so both engines search identical positions.
  std::vector<int> trajectory;
  {
    SerialMcts scout(cfg, eval);
    auto env = g.clone();
    for (int move = 0; move < 4; ++move) {
      const SearchResult r = scout.search(*env);
      trajectory.push_back(r.best_action);
      env->apply(r.best_action);
    }
  }

  auto run = [&](bool reuse) {
    EngineConfig ec;
    ec.mcts = cfg;
    ec.scheme = Scheme::kSerial;
    ec.workers = 1;
    ec.reuse_tree = reuse;
    ec.adapt = false;
    SearchEngine engine(ec, {.evaluator = &eval});
    auto env = g.clone();
    std::size_t expansions = 0;
    for (const int action : trajectory) {
      const SearchResult r = engine.search(*env);
      expansions += r.metrics.expansions;
      env->apply(action);
      engine.advance(action);
    }
    return expansions;
  };

  const std::size_t fresh = run(false);
  const std::size_t reused = run(true);
  EXPECT_LT(reused, fresh);
  // The saving is the reused visit mass, minus terminal rollouts — demand a
  // real margin, not an off-by-one.
  EXPECT_LT(reused, fresh - fresh / 10);
}

TEST(TreeReuse, SharedArenaSurvivesSchemeSwitch) {
  // A scheme switch hands the reused tree to the new driver: search with
  // local-tree, advance, then search the next position with shared-tree
  // over the same arena — the second search starts from the kept subtree.
  Gomoku g(5, 4);
  SyntheticEvaluator eval(g.action_count(), g.encode_size());
  SearchTree arena;
  MctsConfig cfg = quick_config(240);

  LocalTreeMcts local(cfg, 2, eval, &arena);
  auto env = g.clone();
  const SearchResult r1 = local.search(*env);
  env->apply(r1.best_action);
  ASSERT_TRUE(arena.advance_root(r1.best_action));
  const std::int64_t carried = arena.root_visit_total();
  ASSERT_GT(carried, 0);

  SharedTreeMcts shared(cfg, 2, eval, &arena);
  shared.set_reuse_next(true);
  const SearchResult r2 = shared.search(*env);
  EXPECT_EQ(r2.metrics.reused_visits, carried);
  EXPECT_GT(r2.metrics.reused_nodes, 0u);
  // Visit conservation still holds on the merged tree.
  float mass = 0.0f;
  for (float p : r2.action_prior) mass += p;
  EXPECT_NEAR(mass, 1.0f, 1e-4f);
}

TEST(RootNoise, ChangesExplorationButKeepsDistribution) {
  Gomoku g(5, 4);
  UniformEvaluator eval(g.action_count(), g.encode_size());
  MctsConfig with_noise = quick_config(200);
  with_noise.root_noise = true;
  with_noise.noise_fraction = 0.5f;
  SerialMcts search(with_noise, eval);
  const SearchResult r = search.search(g);
  float mass = 0;
  for (float p : r.action_prior) mass += p;
  EXPECT_NEAR(mass, 1.0f, 1e-4f);
}

}  // namespace
}  // namespace apm
