#include "mcts/serial.hpp"

#include "mcts/selection.hpp"
#include "mcts/transposition.hpp"
#include "support/timer.hpp"

namespace apm {

SerialMcts::SerialMcts(MctsConfig cfg, Evaluator& eval,
                       SearchTree* shared_tree)
    : MctsSearch(cfg, shared_tree), eval_(&eval), rng_(cfg.seed) {}

SerialMcts::SerialMcts(MctsConfig cfg, AsyncBatchEvaluator& batch,
                       SearchTree* shared_tree)
    : MctsSearch(cfg, shared_tree), batch_(&batch), rng_(cfg.seed) {
  // Leaf requests never flush (see eval_state), so with one in-flight
  // request a below-threshold batch only ever dispatches via the stale
  // timer or a concurrent producer. Require the timer — without it this
  // configuration is a silent deadlock, not a slow path.
  APM_CHECK_MSG(batch.stale_flush_us() > 0.0,
                "serial search over a batch queue needs the stale-flush "
                "timer (a single in-flight request cannot fill a batch)");
}

void SerialMcts::eval_state(const float* input, std::uint64_t hash,
                            EvalOutput& out, bool flush_partial,
                            SearchMetrics* metrics) {
  if (batch_ != nullptr) {
    SubmitOutcome how = SubmitOutcome::kQueued;
    auto fut = batch_->submit_future(input, batch_tag(), hash, &how);
    if (metrics != nullptr) {
      if (how == SubmitOutcome::kCacheHit) ++metrics->cache_hits;
      if (how == SubmitOutcome::kCoalesced) ++metrics->coalesced_evals;
    }
    // Leaf requests deliberately do NOT flush: with one in-flight request
    // per serial game, batches only form across concurrent games sharing
    // the queue (threshold crossing) or via the stale-flush timer. The
    // root flush is also suppressed on a tagged (multi-producer) queue —
    // it would dispatch other games' forming partial batches, and the
    // stale timer already bounds the root's wait.
    if (flush_partial && batch_tag() < 0 && how == SubmitOutcome::kQueued) {
      batch_->flush();
    }
    out = fut.get();
  } else {
    eval_->evaluate(input, out);
  }
}

SearchResult SerialMcts::search(const Game& env) {
  SearchMetrics metrics;
  const bool reuse = begin_move(metrics);
  InTreeOps ops(tree_, cfg_);
  metrics.workers = 1;
  Timer move_timer;

  std::vector<float> input(env.encode_size());
  EvalOutput eval_out;
  TtView tt_scratch;

  BatchQueueStats batch_before;
  if (batch_ != nullptr) batch_before = batch_->stats();

  if (!reuse) {
    // Root preparation: claim + evaluate + expand (with optional noise).
    Node& root = tree_.node(tree_.root());
    ExpandState expected = ExpandState::kLeaf;
    const bool claimed = root.state.compare_exchange_strong(
        expected, ExpandState::kExpanding, std::memory_order_acq_rel);
    APM_CHECK(claimed);
    env.encode(input.data());
    eval_state(input.data(), env.eval_key(), eval_out, /*flush_partial=*/true,
               nullptr);
    ops.note_eval(tree_.root(), env.eval_key(), eval_out.value);
    ops.expand(tree_.root(), env, eval_out.policy,
               cfg_.root_noise ? &rng_ : nullptr);
  } else if (cfg_.root_noise) {
    ops.mix_root_noise(rng_);
  }

  for (int playout = 0; playout < cfg_.num_playouts; ++playout) {
    auto game = env.clone();
    Timer phase;
    const DescendOutcome outcome =
        ops.descend(*game, CollisionPolicy::kWait);
    metrics.select_seconds += phase.elapsed_seconds();
    metrics.max_depth = std::max(metrics.max_depth, outcome.depth);
    metrics.sum_depth += outcome.depth;

    if (outcome.status == DescendStatus::kTerminal) {
      ++metrics.terminal_rollouts;
      phase.reset();
      ops.backup(outcome.node, game->terminal_value());
      metrics.backup_seconds += phase.elapsed_seconds();
      continue;
    }

    const std::uint64_t key = game->eval_key();
    bool announced = false;
    if (tt_ != nullptr) {
      phase.reset();
      ++metrics.tt_probes;
      float tt_value = 0.0f;
      const TtProbeResult tr = tt_probe_and_graft(tt_, ops, outcome.node, key,
                                                  tt_scratch, &tt_value,
                                                  &announced);
      if (tr == TtProbeResult::kHit) {
        // Grafted from the table: no encode, no eval request. The graft is
        // expansion work, so it lands in expand_seconds.
        ++metrics.tt_grafts;
        metrics.expand_seconds += phase.elapsed_seconds();
        phase.reset();
        ops.backup(outcome.node, tt_value);
        metrics.backup_seconds += phase.elapsed_seconds();
        continue;
      }
      if (tr == TtProbeResult::kPending) ++metrics.tt_pending;
      metrics.expand_seconds += phase.elapsed_seconds();
    }

    phase.reset();
    game->encode(input.data());
    eval_state(input.data(), key, eval_out,
               /*flush_partial=*/false, &metrics);
    ++metrics.eval_requests;
    metrics.eval_seconds += phase.elapsed_seconds();

    phase.reset();
    ops.note_eval(outcome.node, key, eval_out.value);
    ops.expand(outcome.node, *game, eval_out.policy);
    ++metrics.expansions;
    if (tt_ != nullptr) {
      tt_store_expansion(tt_, tree_, outcome.node, key, eval_out.value,
                         outcome.depth, announced);
      ++metrics.tt_stores;
    }
    metrics.expand_seconds += phase.elapsed_seconds();

    phase.reset();
    ops.backup(outcome.node, eval_out.value);
    metrics.backup_seconds += phase.elapsed_seconds();
  }

  metrics.playouts = cfg_.num_playouts;
  metrics.move_seconds = move_timer.elapsed_seconds();
  metrics.nodes = tree_.node_count();
  metrics.edges = tree_.edge_count();
  if (batch_ != nullptr) {
    finish_batch_metrics(*batch_, batch_before, metrics, reuse);
  }

  SearchResult result = extract_result(tree_, env.action_count());
  result.metrics = metrics;
  return result;
}

}  // namespace apm
