#pragma once
// The accelerator queue of §3.3: DNN inference requests accumulate until a
// threshold B is reached, then the whole batch is submitted to the backend.
//
// `num_streams` parallel dispatcher threads play the role of the paper's
// N/B CUDA streams: while one stream is executing a batch, further requests
// can form (and dispatch) the next batch, overlapping accelerator compute
// with in-tree operations on the master thread.
//
// submit() reserves a slot in the forming batch under the lock, then copies
// the request's planes into the batch's contiguous input buffer *outside*
// the lock (concurrent submitters copy in parallel; a per-batch readiness
// counter lets the stream thread wait for in-flight copies before handing
// the buffer to the backend as-is). Each input is therefore copied exactly
// once end-to-end and the mutex never covers a memcpy. Completed buffers
// are recycled through a small free list, keeping the steady state
// allocation-free.
//
// A stale-flush timer bounds the wait for a partial batch (needed at the
// tail of a move when fewer than B requests remain — e.g. the last
// iterations of a 1600-playout move with B = 20), and drain() forces
// completion of everything in flight at the end of a move.

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "eval/gpu_model.hpp"
#include "support/sync_queue.hpp"

namespace apm {

struct BatchQueueStats {
  std::size_t submitted = 0;       // requests accepted
  std::size_t batches = 0;         // backend invocations
  std::size_t full_batches = 0;    // batches of exactly the threshold size
  // Why batches were dispatched: the threshold crossing in submit(), the
  // stale-flush timer, or an explicit flush()/drain().
  std::size_t threshold_dispatches = 0;
  std::size_t stale_flushes = 0;
  std::size_t manual_flushes = 0;
  std::size_t max_batch = 0;
  double mean_batch = 0.0;
  double modelled_backend_us = 0.0;  // sum of backend-modelled latencies
  // Batch-fill histogram: fill_histogram[s] counts dispatched batches of
  // size s (index 0 unused). In multi-producer service mode this is the
  // cross-game batch-formation evidence (ISSUE 3).
  std::vector<std::size_t> fill_histogram;
  // Per-submitter occupancy: tag_slots[tag] counts accepted requests from
  // that tag (a MatchService game slot); untagged submissions (tag < 0)
  // accumulate in untagged_slots.
  std::vector<std::size_t> tag_slots;
  std::size_t untagged_slots = 0;
};

// Field-wise `now - base` between two stats snapshots of the same queue
// (vector counters diffed element-wise; mean_batch recomputed from the
// diffed sums; max_batch recomputed from the histogram delta, since a
// lifetime maximum cannot be subtracted). Used by every consumer that
// attributes a window of shared-queue activity — per-move driver metrics
// and the MatchService's service-era stats.
BatchQueueStats stats_delta(const BatchQueueStats& now,
                            const BatchQueueStats& base);

class AsyncBatchEvaluator {
 public:
  using Callback = std::function<void(EvalOutput)>;

  // batch_threshold >= 1; num_streams >= 1. stale_flush_us <= 0 disables
  // the timer (then only threshold crossings and flush()/drain() dispatch).
  AsyncBatchEvaluator(InferenceBackend& backend, int batch_threshold,
                      int num_streams, double stale_flush_us = 2000.0);
  ~AsyncBatchEvaluator();

  AsyncBatchEvaluator(const AsyncBatchEvaluator&) = delete;
  AsyncBatchEvaluator& operator=(const AsyncBatchEvaluator&) = delete;

  // Copies `input` (input_size floats) into the forming batch buffer. `cb`
  // runs on a stream thread once the containing batch completes; it must
  // not block for long and must not call back into submit() (CP.22).
  // `tag` >= 0 attributes the request to a submitter (a MatchService game
  // slot) in the stats; negative = untagged.
  void submit(const float* input, Callback cb, int tag = -1);

  // Future-returning convenience (shared-tree workers block on these).
  std::future<EvalOutput> submit_future(const float* input, int tag = -1);

  // Dispatches the current partial batch immediately (if any).
  void flush();

  // Flushes and waits until every accepted request has completed. Partial
  // batches formed by racing submitters are re-flushed while waiting, so a
  // submitter blocked on a future it queued into a below-threshold batch is
  // always woken — the multi-producer shutdown path (a MatchService
  // stopping mid-game) cannot deadlock here. Only an unbounded stream of
  // *new* submissions keeps drain() from returning.
  void drain();

  // Runtime re-tune (the adaptive engine's B switch, §3.3/Algorithm 4): any
  // forming partial batch is dispatched first, so in-flight slot copies
  // never race a buffer resize; batches formed afterwards use the new
  // threshold. Safe to call concurrently with submit().
  void set_batch_threshold(int threshold);

  int batch_threshold() const {
    std::lock_guard lock(mutex_);
    return threshold_;
  }
  int num_streams() const { return static_cast<int>(streams_.size()); }
  // The stale-flush timer period (µs); 0 when the timer is disabled.
  // Multi-producer users (MatchService) require it for liveness at game
  // tails, where the remaining producers cannot fill a batch.
  double stale_flush_us() const { return stale_flush_us_; }
  BatchQueueStats stats() const;

 private:
  // One forming/in-flight batch: a contiguous input buffer sized for the
  // full threshold up front (so concurrent submitters can copy into
  // disjoint slots without reallocation), the per-request callbacks
  // (mutated only under the lock), and the count of completed slot copies.
  // Heap-allocated so a submitter can keep writing its slot while the
  // batch is already dispatched. Recycled via free_batches_.
  struct Batch {
    std::vector<float> inputs;       // capacity threshold * input_size
    std::vector<Callback> callbacks;
    std::atomic<int> ready{0};       // slots fully copied
  };

  enum class DispatchReason { kThreshold, kStale, kManual };

  void dispatch_locked(std::unique_lock<std::mutex>& lock,
                       DispatchReason reason);
  std::unique_ptr<Batch> acquire_batch_locked();
  void stream_loop();
  void flusher_loop(const std::stop_token& stop);

  InferenceBackend& backend_;
  int threshold_;  // guarded by mutex_ (runtime-tunable)
  const double stale_flush_us_;

  mutable std::mutex mutex_;
  std::unique_ptr<Batch> pending_;
  std::vector<std::unique_ptr<Batch>> free_batches_;
  std::chrono::steady_clock::time_point oldest_pending_;
  std::atomic<std::size_t> in_flight_{0};  // accepted, not yet completed
  std::condition_variable drained_cv_;

  BatchQueueStats stats_;
  double sum_batch_sizes_ = 0.0;
  SyncQueue<std::unique_ptr<Batch>> batch_queue_;
  std::vector<std::jthread> streams_;
  std::jthread flusher_;
};

}  // namespace apm
