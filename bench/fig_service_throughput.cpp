// Service throughput bench (ISSUE 3, cache column ISSUE 4): aggregate
// evals/s, moves/s, and the shared-queue batch fill as the number of
// concurrent games grows at a FIXED service worker pool — demonstrating
// that cross-game batch formation beats the starved single-game producer at
// the same threshold, and (since ISSUE 4) that the eval cache in front of
// the queue removes duplicate inference across those games on top of it.
//
// Setup: K ∈ {1, 2, 4, 8} serial-engine games share one evaluation lane
// (threshold 4) in front of a simulated-GPU backend that busy-waits its
// modelled latency, so wall-clock throughput reflects the A6000 timing
// model. Each serial game has exactly one leaf evaluation in flight:
//   K = 1  → every batch is a stale-flushed singleton (the paper's
//            starvation case: one tree cannot supply a batch);
//   K >= 4 → the games' single requests coalesce into threshold-sized
//            batches, amortizing the per-batch launch + transfer cost.
// Every K point runs twice — cache off (the ISSUE-3 baseline numbers keep
// their original JSON names) and with a 16k-entry EvalCache attached
// (`*_cached` entries): the dedupe win shows as served evals/s rising above
// the cache-off line while the backend does strictly less work.
//
// Since ISSUE 5 the rows run through the ROUTED path — a one-model
// EvaluatorPool lane and a single-workload pool-mode MatchService, with the
// aggregate controller disabled so the threshold stays pinned at 4 exactly
// like the historical rows: same JSON names, directly comparable numbers,
// and any routing overhead would show as a regression here.
//
// Writes a JSON baseline (default BENCH_service.json, or argv[1]).

// A final mixed-precision row (ISSUE 6) replaces the sim-GPU with two REAL
// CPU lanes over one tiny net — fp32 and its int8 snapshot — served side
// by side from one MatchService; the per-lane measured backend cost is the
// serving-plane evidence that a quantized lane is cheaper per eval at
// identical routing.
//
// Tracing-overhead rows (ISSUE 8): the K=8 cached configuration run with
// the obs tracing plane disabled (the default — every instrumentation site
// is one relaxed atomic load) and with a live tracing session; the
// `service_tracing_overhead_frac` entry is the measured cost of carrying
// the instrumentation, and `service_tracing_off_evals_per_s` is directly
// comparable to `service_evals_per_s_k8_cached` across PRs (the ≤2%
// disabled-cost contract).
//
// Sampler-overhead rows (ISSUE 10): the same configuration run with a live
// TelemetrySampler publishing the service and snapshotting the registry at
// the production default period (100 ms). The
// `service_sampler_overhead_frac` entry pins the ambient cost of always-on
// telemetry at ≤2% — the price of running the sampler in production, not
// just during capture sessions.

#include <algorithm>
#include <cstdio>
#include <string>

#include "eval/gpu_model.hpp"
#include "eval/net_evaluator.hpp"
#include "games/gomoku.hpp"
#include "nn/quantize.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/match_service.hpp"
#include "support/table.hpp"

namespace {

using namespace apm;

struct JsonWriter {
  std::FILE* f;
  bool first = true;

  void entry(const std::string& name, double value, const char* unit) {
    std::fprintf(f, "%s\n  {\"name\": \"%s\", \"value\": %.4f, \"unit\": \"%s\"}",
                 first ? "" : ",", name.c_str(), value, unit);
    first = false;
  }
};

struct RunResult {
  ServiceStats stats;
};

// Plays 2·K games on K slots over a fresh one-model pool lane; the worker
// pool is fixed at 8 threads for every K, so only the game concurrency
// varies. `cached` puts a 16k-entry per-net EvalCache in front of the lane.
// `sampled` runs a live TelemetrySampler at the default 100 ms period
// (publishing the service's metrics each frame) for the duration — the
// ISSUE-10 ambient-cost mode.
RunResult run_service(const Game& game, int concurrent_games, bool cached,
                      bool sampled = false) {
  SyntheticEvaluator eval(game.action_count(), game.encode_size());
  SimGpuBackend backend(eval, GpuTimingModel{}, /*emulate_wall_time=*/true);
  EvaluatorPool pool;
  pool.add_model({.name = "gomoku-net",
                  .backend = &backend,
                  .batch_threshold = 4,
                  .num_streams = 2,
                  .stale_flush_us = 1500.0,
                  .cache = cached,
                  .cache_cfg = {.capacity = 1 << 14, .shards = 8,
                                .ways = 4}});

  ServiceConfig sc;
  sc.workers = 8;  // fixed thread pool; slots bound the real concurrency
  sc.aggregate.enabled = false;  // pinned threshold: the historical rows

  ServiceWorkload w;
  w.proto = std::shared_ptr<const Game>(game.clone());
  w.model = "gomoku-net";
  w.slots = concurrent_games;
  w.engine.mcts.num_playouts = 64;
  w.engine.scheme = Scheme::kSerial;
  w.engine.adapt = false;

  MatchService service(sc, pool, {std::move(w)});
  obs::TelemetrySamplerConfig scfg;  // default 100 ms period
  scfg.ring_capacity = 256;
  obs::TelemetrySampler sampler(scfg);
  if (sampled) {
    sampler.add_source([&service] { service.publish_metrics(); });
    sampler.start();
  }
  service.enqueue(2 * concurrent_games);
  service.start();
  service.drain();
  RunResult r;
  r.stats = service.stats();
  if (sampled) sampler.stop();
  service.stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_service.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "[");
  JsonWriter json{f};

  std::printf(
      "=== service throughput: cross-game batch formation ===\n"
      "shared AsyncBatchEvaluator, threshold 4, 2 streams, sim-GPU backend\n"
      "(wall-emulated A6000 timing model); serial engines, 8 service "
      "threads fixed, K slots;\neach K run cache-off and with a 16k-entry "
      "eval cache\n\n");

  const Gomoku game(5, 4);
  Table table({"K games", "cache", "mean fill", "full batches", "cache hits",
               "coalesced", "hit rate", "evals/s", "moves/s"});

  double fill_single = 0.0;
  double fill_cross4 = 0.0;
  double hit_rate_k4 = 0.0;
  for (const int k : {1, 2, 4, 8}) {
    for (const bool cached : {false, true}) {
      const RunResult r = run_service(game, k, cached);
      const ServiceStats& s = r.stats;
      if (!cached && k == 1) fill_single = s.mean_batch_fill;
      if (!cached && k == 4) fill_cross4 = s.mean_batch_fill;
      if (cached && k == 4) hit_rate_k4 = s.cache_hit_rate;
      table.add_row({std::to_string(k), cached ? "on" : "off",
                     Table::fmt(s.mean_batch_fill, 2),
                     std::to_string(s.batch.full_batches),
                     std::to_string(s.cache_hits),
                     std::to_string(s.coalesced_evals),
                     Table::fmt(s.cache_hit_rate, 3),
                     Table::fmt(s.evals_per_second, 0),
                     Table::fmt(s.moves_per_second, 1)});
      // Cache-off keeps the original ISSUE-3 entry names so the baseline
      // stays comparable across PRs; cache-on adds the `_cached` line.
      const std::string suffix =
          "_k" + std::to_string(k) + (cached ? "_cached" : "");
      json.entry("service_mean_batch_fill" + suffix, s.mean_batch_fill,
                 "requests/batch");
      json.entry("service_evals_per_s" + suffix, s.evals_per_second,
                 "evals/s");
      json.entry("service_moves_per_s" + suffix, s.moves_per_second,
                 "moves/s");
      json.entry("service_stale_flush_share" + suffix,
                 s.batch.batches > 0
                     ? static_cast<double>(s.batch.stale_flushes) /
                           static_cast<double>(s.batch.batches)
                     : 0.0,
                 "fraction");
      if (cached) {
        json.entry("service_cache_hit_rate" + suffix, s.cache_hit_rate,
                   "fraction");
        json.entry("service_evals_saved" + suffix,
                   static_cast<double>(s.cache_hits + s.coalesced_evals),
                   "evals");
      }
    }
  }
  table.print("aggregate service throughput vs concurrent games");

  json.entry("service_fill_uplift_k4_vs_k1",
             fill_single > 0.0 ? fill_cross4 / fill_single : 0.0, "x");

  // --- mixed-precision lanes (ISSUE 6) -------------------------------------
  // One real net served twice from the same service: an fp32 lane and its
  // int8-quantized snapshot, 4 slots each. Lane telemetry measures the
  // REAL per-eval backend cost (modelled_backend_us is CpuBackend's
  // measured wall clock), so the int8 row is the serving-plane version of
  // the kernel-level gemm_q8 uplift. The net keeps the paper's trunk
  // widths (32/64/128) on a 9x9 board: int8 wins on GEMM size, so a
  // tiny-trunk net would only measure quantization overhead.
  {
    NetConfig cfg;  // default trunks; 9x9 board keeps the bench fast
    cfg.height = 9;
    cfg.width = 9;
    PolicyValueNet net(cfg, 7);
    const QuantizedPolicyValueNet qnet(net);
    NetEvaluator fp32_eval(net);
    NetEvaluator int8_eval(qnet);
    CpuBackend fp32_backend(fp32_eval);
    CpuBackend int8_backend(int8_eval);
    EvaluatorPool pool;
    pool.add_model({.name = "net-fp32",
                    .backend = &fp32_backend,
                    .batch_threshold = 4,
                    .stale_flush_us = 1500.0});
    pool.add_model({.name = "net-int8",
                    .backend = &int8_backend,
                    .batch_threshold = 4,
                    .stale_flush_us = 1500.0,
                    .precision = Precision::kInt8});

    ServiceConfig sc;
    sc.workers = 8;
    sc.aggregate.enabled = false;

    const Gomoku board9(9, 5);
    ServiceWorkload wf;
    wf.proto = std::shared_ptr<const Game>(board9.clone());
    wf.model = "net-fp32";
    wf.slots = 4;
    wf.engine.mcts.num_playouts = 32;
    wf.engine.scheme = Scheme::kSerial;
    wf.engine.adapt = false;
    ServiceWorkload wq = wf;
    wq.model = "net-int8";

    MatchService service(sc, pool, {wf, wq});
    service.enqueue(8);
    service.start();
    service.drain();
    const ServiceStats s = service.stats();
    service.stop();

    double us_fp32 = 0.0, us_int8 = 0.0;
    for (const ServiceLaneStats& lane : s.lanes) {
      const double us_per =
          lane.batch.submitted > 0
              ? lane.batch.modelled_backend_us /
                    static_cast<double>(lane.batch.submitted)
              : 0.0;
      if (lane.precision == Precision::kInt8) {
        us_int8 = us_per;
      } else {
        us_fp32 = us_per;
      }
      std::printf("mixed-precision lane %-8s (%s): %8llu evals  %6.1f "
                  "us/eval (measured backend)\n",
                  lane.model.c_str(), precision_name(lane.precision),
                  static_cast<unsigned long long>(lane.batch.submitted),
                  us_per);
    }
    json.entry("service_mixed_fp32_eval_us", us_fp32, "us");
    json.entry("service_mixed_int8_eval_us", us_int8, "us");
    json.entry("service_mixed_int8_speedup",
               us_int8 > 0.0 ? us_fp32 / us_int8 : 0.0, "x");
    std::printf("mixed-precision: int8 lane %.2fx cheaper per eval\n",
                us_int8 > 0.0 ? us_fp32 / us_int8 : 0.0);
  }

  // --- tracing overhead (ISSUE 8) ------------------------------------------
  // Same K=8 cached configuration as the service_*_k8_cached rows, best of
  // 3 reps per mode (one core; the max tames scheduler noise). Off mode is
  // the shipping default: instrumentation compiled in, gate closed. On mode
  // carries a live recorder session (64k-event rings, wrap allowed) — the
  // cost a capture pays, NOT a cost production pays.
  {
    const Gomoku board(5, 4);
    const auto best_evals_per_s = [&board](bool traced) {
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        if (traced) {
          obs::set_trace_capacity(std::size_t{1} << 16);
          obs::set_tracing(true);
        }
        const RunResult r = run_service(board, 8, /*cached=*/true);
        obs::set_tracing(false);
        // The service (and its lane stream threads) is fully torn down
        // inside run_service, so the recorder can be reset between reps.
        obs::reset_trace();
        best = std::max(best, r.stats.evals_per_second);
      }
      return best;
    };
    const double off = best_evals_per_s(false);
    const double on = best_evals_per_s(true);
    const double overhead = off > 0.0 ? 1.0 - on / off : 0.0;
    std::printf("\ntracing overhead (K=8 cached): off %.0f evals/s, "
                "on %.0f evals/s (%.1f%% session cost)\n",
                off, on, 100.0 * overhead);
    json.entry("service_tracing_off_evals_per_s", off, "evals/s");
    json.entry("service_tracing_on_evals_per_s", on, "evals/s");
    json.entry("service_tracing_overhead_frac", overhead, "fraction");
  }

  // --- telemetry sampler overhead (ISSUE 10) -------------------------------
  // Same K=8 cached configuration with the sampler at its production
  // default (100 ms frames). Each frame runs publish_metrics — the
  // service-lock stats merge plus the per-lane SLO windows — and a full
  // registry snapshot into the ring, so the row prices the whole always-on
  // pipeline, not just the ring push. Best of 5 per mode with the modes
  // INTERLEAVED (off,on,off,on,...): on a single-core box the machine
  // drifts over the bench's minutes-long run by more than the 2% contract,
  // and back-to-back pairs see the same conditions where sequential
  // blocks would bake the drift into the ratio.
  double sampler_overhead = 0.0;
  {
    const Gomoku board(5, 4);
    double off = 0.0, on = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      off = std::max(
          off, run_service(board, 8, /*cached=*/true, /*sampled=*/false)
                   .stats.evals_per_second);
      on = std::max(
          on, run_service(board, 8, /*cached=*/true, /*sampled=*/true)
                  .stats.evals_per_second);
    }
    sampler_overhead = off > 0.0 ? 1.0 - on / off : 0.0;
    std::printf("\nsampler overhead (K=8 cached, 100 ms frames): off %.0f "
                "evals/s, on %.0f evals/s (%.1f%% ambient cost)\n",
                off, on, 100.0 * sampler_overhead);
    json.entry("service_sampler_off_evals_per_s", off, "evals/s");
    json.entry("service_sampler_on_evals_per_s", on, "evals/s");
    json.entry("service_sampler_overhead_frac", sampler_overhead, "fraction");
  }

  std::fprintf(f, "\n]\n");
  std::fclose(f);

  std::printf(
      "\ncheck: K=1 fill ~1.0 (starved single-game producer; every batch a "
      "stale singleton);\nK>=4 fill approaches the threshold — cross-game "
      "batches amortize launch+PCIe per sample.\nWith the cache on, hits + "
      "coalesces shrink backend work at the same served demand\n(K=4 hit "
      "rate %.3f).\nbaseline written to %s\n",
      hit_rate_k4, out_path);
  // The ≤2% ambient-telemetry contract is an exit gate, not just a row.
  return fill_cross4 > fill_single && hit_rate_k4 > 0.0 &&
                 sampler_overhead <= 0.02
             ? 0
             : 1;
}
