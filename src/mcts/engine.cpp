#include "mcts/engine.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace apm {

SearchEngine::SearchEngine(EngineConfig cfg, SearchResources res)
    : cfg_(cfg),
      res_(res),
      controller_(cfg.hw, cfg.seed_costs, cfg.adaptive, cfg.scheme,
                  cfg.workers, cfg.batch_threshold) {
  APM_CHECK_MSG(res_.evaluator != nullptr || res_.batch != nullptr,
                "SearchEngine: no evaluation resource provided");
  rebuild_driver(cfg_.scheme, cfg_.workers, cfg_.batch_threshold);
}

int SearchEngine::batch_threshold() const {
  return res_.batch != nullptr ? res_.batch->batch_threshold()
                               : cfg_.batch_threshold;
}

void SearchEngine::rebuild_driver(Scheme scheme, int workers,
                                  int batch_threshold) {
  // The driver is rebuilt, the arena is not: the new scheme inherits the
  // tree exactly as the old scheme left it.
  driver_ = make_search(scheme, cfg_.mcts, workers, res_, &tree_);
  if (res_.batch != nullptr) {
    // §3.3: shared-tree batches are always N; local-tree uses the tuned B.
    const int threshold =
        scheme == Scheme::kSharedTree ? workers : std::max(1, batch_threshold);
    res_.batch->set_batch_threshold(threshold);
  }
}

SearchResult SearchEngine::search(const Game& env) {
  EngineMoveStats ms;
  ms.move = move_index_;
  ms.scheme = driver_->scheme();
  ms.workers = driver_->workers();
  ms.batch_threshold = batch_threshold();

  // Tree-reuse budget credit: visits already banked at the (advanced) root
  // count toward this move's playout target.
  int budget = cfg_.mcts.num_playouts;
  if (pending_reuse_) {
    ms.reused_tree = true;
    ms.reused_visits = reusable_visits_;
    if (cfg_.count_reused_visits) {
      budget = std::max<int>(
          cfg_.min_playouts,
          budget - static_cast<int>(std::min<std::int64_t>(
                       reusable_visits_, cfg_.mcts.num_playouts)));
    }
    driver_->set_reuse_next(true);
  }
  ms.playout_budget = budget;
  driver_->mutable_config().num_playouts = budget;

  SearchResult result = driver_->search(env);
  driver_->mutable_config().num_playouts = cfg_.mcts.num_playouts;
  pending_reuse_ = false;
  reusable_visits_ = 0;
  ms.metrics = result.metrics;

  if (cfg_.adapt) {
    if (cost_feed_) {
      controller_.observe_costs(cost_feed_(move_index_));
    } else {
      controller_.observe(result.metrics);
    }
    const AdaptivePlan plan = controller_.plan();
    ms.predicted_us = plan.predicted_us;
    ms.current_predicted_us = plan.current_predicted_us;
    if (plan.switched) {
      // Only the GPU-platform controller tunes B (Algorithm 4); the CPU
      // decision always reports batch_size = 1, which must not clobber the
      // configured evaluator threshold.
      const int batch = cfg_.adaptive.gpu ? plan.batch_size
                                          : cfg_.batch_threshold;
      rebuild_driver(plan.scheme, plan.workers, batch);
      ms.switched = true;
      ++switches_;
    }
  }
  ms.next_scheme = driver_->scheme();
  ms.next_workers = driver_->workers();
  ms.next_batch_threshold = batch_threshold();

  log_.push_back(ms);
  ++move_index_;
  return result;
}

void SearchEngine::advance(int action) {
  if (!cfg_.reuse_tree) {
    tree_.reset();
    pending_reuse_ = false;
    reusable_visits_ = 0;
    return;
  }
  const bool kept = tree_.advance_root(action);
  pending_reuse_ = kept;
  reusable_visits_ = kept ? tree_.root_visit_total() : 0;
}

void SearchEngine::reset_game() {
  tree_.reset();
  pending_reuse_ = false;
  reusable_visits_ = 0;
  // Bound the adaptation trace across long runs (thousands of episodes):
  // keep only the most recent entries. Safe here — episode consumers slice
  // the log only after their episode ends, and every episode starts with
  // reset_game().
  constexpr std::size_t kMaxLogEntries = 4096;
  if (log_.size() > kMaxLogEntries) {
    log_.erase(log_.begin(),
               log_.end() - static_cast<std::ptrdiff_t>(kMaxLogEntries));
  }
}

}  // namespace apm
