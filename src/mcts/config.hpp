#pragma once
// Configuration and result types shared by every search scheme.

#include <cstdint>
#include <string>
#include <vector>

#include "eval/async_batch.hpp"

namespace apm {

// The parallel schemes of the program template (§3). kSerial is the
// 1-worker reference; kLeafParallel / kRootParallel are the related-work
// baselines (§2.2) used by the ablation bench.
enum class Scheme {
  kSerial,
  kSharedTree,
  kLocalTree,
  kLeafParallel,
  kRootParallel,
};

std::string to_string(Scheme scheme);

// In-flight rollouts (concurrently outstanding evaluation requests) a
// configuration sustains: 1 serial, N tree-parallel, min(N, B) for
// local-tree over an accelerator queue, where the master keeps at most one
// dispatch granularity outstanding per wave slot. Shared by the
// AdaptiveController's virtual-loss re-tune and by the serving layer's
// aggregate arrival-rate model (each live game contributes this many
// producers to its evaluation queue).
inline int scheme_inflight(Scheme scheme, int workers, int batch,
                           bool gpu_queue) {
  switch (scheme) {
    case Scheme::kSerial:
      return 1;
    case Scheme::kLocalTree:
      return gpu_queue ? (workers < batch ? (workers < 1 ? 1 : workers)
                                          : (batch < 1 ? 1 : batch))
                       : (workers < 1 ? 1 : workers);
    default:
      return workers < 1 ? 1 : workers;
  }
}

// Lock discipline for the shared-tree scheme (ablation):
// per-node 1-byte spinlocks + per-edge atomics (default), or one coarse
// tree mutex exactly like Algorithm 2's "obtain lock".
enum class LockMode { kPerNode, kCoarse };

// Virtual-loss flavour (§2.1: "VL can either be a pre-defined constant
// value [2], or a number tracking visit counts of child nodes [8]"):
//  kConstant      — each in-flight rollout behaves as `virtual_loss` extra
//                   visits that each returned a loss (Chaslot-style).
//  kVisitTracking — WU-UCT-style: in-flight rollouts count as unobserved
//                   visits (inflating N and the exploration denominator)
//                   without pessimising Q.
enum class VirtualLossMode { kConstant, kVisitTracking };

struct MctsConfig {
  // Playouts per move ("tree size limit per move is 1600", §5.1).
  int num_playouts = 1600;
  // Exploration constant c in Eq. 1.
  float c_puct = 5.0f;
  // Virtual-loss constant VL (§2.1): pre-defined constant variant [2].
  float virtual_loss = 3.0f;
  VirtualLossMode vl_mode = VirtualLossMode::kConstant;
  // Dirichlet root noise (self-play only).
  bool root_noise = false;
  float dirichlet_alpha = 0.3f;
  float noise_fraction = 0.25f;
  // Deterministic seed for noise/tie-breaking.
  std::uint64_t seed = 1;
  LockMode lock_mode = LockMode::kPerNode;
};

// Per-move instrumentation. Phase times are *summed across workers* (they
// are resource-seconds); move_seconds is the wall-clock of the move. The
// amortized per-worker-iteration latency of §5.3 is
// move_seconds / num_playouts (the paper divides total move time by 1600).
struct SearchMetrics {
  int playouts = 0;
  int workers = 1;
  double move_seconds = 0.0;
  double select_seconds = 0.0;
  double expand_seconds = 0.0;
  double backup_seconds = 0.0;
  double eval_seconds = 0.0;  // includes time blocked waiting for results
  std::size_t nodes = 0;
  std::size_t edges = 0;
  int max_depth = 0;
  // Σ descent depth across playouts; sum_depth / playouts is the mean path
  // length the adaptive controller feeds back into the Eq. 3–6 models.
  double sum_depth = 0.0;
  std::size_t eval_requests = 0;
  // Eval-cache dedupe (zero without a cache on the queue): leaf requests
  // served synchronously from the EvalCache, and leaf requests coalesced
  // onto an in-flight duplicate instead of a second batch slot. Both count
  // leaves only — subsets of eval_requests, so hit-rate ratios are
  // well-formed; root-eval dedupe shows in the queue/cache counters.
  // Unique backend work this move ≈ eval_requests − cache_hits −
  // coalesced_evals.
  std::size_t cache_hits = 0;
  std::size_t coalesced_evals = 0;
  // Nodes newly expanded during this search (== fresh DNN evaluations that
  // produced edges). With cross-move tree reuse this is the per-move cost
  // the reused subtree saves.
  std::size_t expansions = 0;
  // Transposition-table traffic (zero without a TT attached). tt_grafts
  // counts leaves expanded entirely from a stored entry — no encode, no
  // eval request, NOT included in `expansions` (which stays the fresh-eval
  // count). tt_pending counts probes that found the position announced but
  // not yet stored (the Cazenave coalescing case one layer above the
  // queue's in-flight dedupe).
  std::size_t tt_probes = 0;
  std::size_t tt_grafts = 0;
  std::size_t tt_pending = 0;
  std::size_t tt_stores = 0;
  std::size_t terminal_rollouts = 0;
  std::size_t expansion_collisions = 0;
  // Tree reuse accounting: subtree carried over from the previous move
  // (zero when the search started from a fresh root).
  std::size_t reused_nodes = 0;
  std::int64_t reused_visits = 0;
  BatchQueueStats batch;

  double amortized_iteration_us() const {
    return playouts > 0 ? move_seconds * 1e6 / playouts : 0.0;
  }
  double mean_depth() const {
    return playouts > 0 ? sum_depth / playouts : 0.0;
  }
};

struct SearchResult {
  // Normalised root visit counts over the *full* action space (zero for
  // illegal actions) — the action prior of Algorithms 2/3.
  std::vector<float> action_prior;
  // argmax of visit counts.
  int best_action = -1;
  // Root value estimate: Σ_a N(a)·Q(a) / Σ_a N(a).
  float root_value = 0.0f;
  SearchMetrics metrics;

  // Temperature-adjusted prior: π_a ∝ N(a)^(1/τ). τ == 1 returns
  // action_prior unchanged; τ → 0 approaches one-hot argmax.
  std::vector<float> prior_with_temperature(float tau) const;
};

}  // namespace apm
