#include "games/game.hpp"

#include "support/check.hpp"

namespace apm {

float Game::terminal_value() const {
  APM_DCHECK(is_terminal());
  const int w = winner();
  if (w == 0) return 0.0f;
  return w == current_player() ? 1.0f : -1.0f;
}

int Game::num_legal_actions() const {
  std::vector<int> actions;
  legal_actions(actions);
  return static_cast<int>(actions.size());
}

}  // namespace apm
