#include "serve/match_service.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "support/check.hpp"

namespace apm {
namespace {

// Field-wise accumulation of queue-stat deltas across lanes (mean_batch is
// recomputed by the caller from the summed counters).
void accumulate(BatchQueueStats& into, const BatchQueueStats& d) {
  into.submitted += d.submitted;
  into.batches += d.batches;
  into.full_batches += d.full_batches;
  into.threshold_dispatches += d.threshold_dispatches;
  into.stale_flushes += d.stale_flushes;
  into.manual_flushes += d.manual_flushes;
  into.max_batch = std::max(into.max_batch, d.max_batch);
  into.modelled_backend_us += d.modelled_backend_us;
  if (into.fill_histogram.size() < d.fill_histogram.size()) {
    into.fill_histogram.resize(d.fill_histogram.size(), 0);
  }
  for (std::size_t i = 0; i < d.fill_histogram.size(); ++i) {
    into.fill_histogram[i] += d.fill_histogram[i];
  }
  if (into.tag_slots.size() < d.tag_slots.size()) {
    into.tag_slots.resize(d.tag_slots.size(), 0);
  }
  for (std::size_t i = 0; i < d.tag_slots.size(); ++i) {
    into.tag_slots[i] += d.tag_slots[i];
  }
  into.untagged_slots += d.untagged_slots;
  into.cache_hits += d.cache_hits;
  into.coalesced += d.coalesced;
}

void accumulate(CacheStats& into, const CacheStats& c) {
  into.lookups += c.lookups;
  into.hits += c.hits;
  into.misses += c.misses;
  into.inserts += c.inserts;
  into.evictions += c.evictions;
  into.entries += c.entries;
  into.capacity += c.capacity;
}

}  // namespace

MatchService::MatchService(ServiceConfig cfg, const Game& game,
                           SearchResources res)
    : cfg_(std::move(cfg)), res_(res) {
  APM_CHECK(cfg_.slots >= 1);
  APM_CHECK(cfg_.workers >= 1);
  APM_CHECK_MSG(res_.evaluator != nullptr || res_.batch != nullptr,
                "MatchService: no evaluation resource provided");
  if (res_.batch != nullptr) {
    APM_CHECK_MSG(res_.batch->stale_flush_us() > 0.0,
                  "MatchService over a batch queue needs the stale-flush "
                  "timer: at a game tail the remaining games cannot fill a "
                  "batch, and the timer bounds their wait");
    if (cfg_.batch_threshold > 0) {
      res_.batch->set_batch_threshold(cfg_.batch_threshold);
    }
    Lane lane;
    lane.model_id = -1;
    lane.start = res_.batch->stats();
    lane.start_request = res_.batch->request_histogram();
    lane.start_batch_wait = res_.batch->batch_wait_histogram();
    lane.start_backend = res_.batch->backend_histogram();
    lane.last_window = lane.start;
    lanes_.push_back(std::move(lane));
  }
  auto wl = std::make_unique<Workload>();
  wl->spec.proto = std::shared_ptr<const Game>(game.clone());
  wl->spec.slots = cfg_.slots;
  wl->spec.engine = cfg_.engine;
  wl->spec.self_play = cfg_.self_play;
  wl->inflight = scheme_inflight(cfg_.engine.scheme, cfg_.engine.workers,
                                 cfg_.engine.batch_threshold,
                                 cfg_.engine.adaptive.gpu);
  workloads_.push_back(std::move(wl));
  init_slots();
}

MatchService::MatchService(ServiceConfig cfg, EvaluatorPool& pool,
                           std::vector<ServiceWorkload> workloads)
    : cfg_(std::move(cfg)), pool_(&pool) {
  APM_CHECK(cfg_.workers >= 1);
  APM_CHECK_MSG(!workloads.empty(), "MatchService: no workloads declared");
  for (ServiceWorkload& spec : workloads) {
    APM_CHECK_MSG(spec.proto != nullptr,
                  "MatchService: workload needs a game prototype");
    APM_CHECK(spec.slots >= 1);
    const int model_id = pool.find(spec.model);
    APM_CHECK_MSG(model_id >= 0,
                  "MatchService: workload names an unregistered model");
    // A mis-routed workload would feed the wrong tensor shapes to the net;
    // fail at construction, not at the first submit.
    const InferenceBackend& backend = pool.backend(model_id);
    APM_CHECK_MSG(backend.action_count() == spec.proto->action_count() &&
                      backend.input_size() == spec.proto->encode_size(),
                  "MatchService: workload game and model shapes disagree");

    auto wl = std::make_unique<Workload>();
    wl->spec = std::move(spec);
    wl->model_id = model_id;
    wl->inflight =
        scheme_inflight(wl->spec.engine.scheme, wl->spec.engine.workers,
                        wl->spec.engine.batch_threshold,
                        wl->spec.engine.adaptive.gpu);
    if (std::none_of(lanes_.begin(), lanes_.end(), [&](const Lane& l) {
          return l.model_id == model_id;
        })) {
      Lane lane;
      lane.model_id = model_id;
      lane.start = pool.queue(model_id).stats();
      lane.start_request = pool.queue(model_id).request_histogram();
      lane.start_batch_wait = pool.queue(model_id).batch_wait_histogram();
      lane.start_backend = pool.queue(model_id).backend_histogram();
      lane.last_window = lane.start;
      if (pool.slo(model_id).enabled) {
        lane.slo = std::make_unique<obs::SloEvaluator>(pool.slo(model_id));
        // SLO windows start at the service era, not at queue birth.
        lane.slo_last = lane.start_request;
      }
      lanes_.push_back(std::move(lane));
    }
    workloads_.push_back(std::move(wl));
  }
  if (cfg_.aggregate.enabled) {
    controller_ = std::make_unique<AggregateController>(cfg_.aggregate,
                                                        pool.model_count());
  }
  init_slots();
}

void MatchService::init_slots() {
  for (std::size_t w = 0; w < workloads_.size(); ++w) {
    total_slots_ += workloads_[w]->spec.slots;
  }
  slots_.reserve(static_cast<std::size_t>(total_slots_));
  int id = 0;
  for (std::size_t w = 0; w < workloads_.size(); ++w) {
    Workload& wl = *workloads_[w];
    wl.free_slots.reserve(static_cast<std::size_t>(wl.spec.slots));
    for (int i = 0; i < wl.spec.slots; ++i) {
      slots_.push_back(std::make_unique<Slot>());
      slots_.back()->id = id++;
      slots_.back()->workload = static_cast<int>(w);
      wl.free_slots.push_back(slots_.back().get());
    }
  }
}

MatchService::~MatchService() { stop(); }

bool MatchService::enqueue(int games) {
  APM_CHECK(games >= 0);
  {
    std::lock_guard lock(mutex_);
    if (stop_) return false;  // racing a shutdown: refuse, don't abort
    for (int i = 0; i < games; ++i) {
      // Deterministic round-robin assignment: the j-th enqueue(int) game
      // always lands on the same workload, independent of scheduling.
      Workload& wl =
          *workloads_[static_cast<std::size_t>(enqueue_rr_) %
                      workloads_.size()];
      ++enqueue_rr_;
      ++wl.pending;
      ++pending_games_;
    }
  }
  work_cv_.notify_all();
  return true;
}

bool MatchService::enqueue_workload(int workload, int games) {
  APM_CHECK(games >= 0);
  APM_CHECK(workload >= 0 &&
            workload < static_cast<int>(workloads_.size()));
  {
    std::lock_guard lock(mutex_);
    if (stop_) return false;
    workloads_[static_cast<std::size_t>(workload)]->pending += games;
    pending_games_ += games;
  }
  work_cv_.notify_all();
  return true;
}

void MatchService::start() {
  std::lock_guard lock(mutex_);
  APM_CHECK_MSG(!stop_, "MatchService: start() after stop()");
  if (started_) return;
  started_ = true;
  wall_timer_.reset();
  threads_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

bool MatchService::seatable_locked() const {
  for (const std::unique_ptr<Workload>& wl : workloads_) {
    if (wl->pending > 0 && !wl->free_slots.empty()) return true;
  }
  return false;
}

void MatchService::claim_locked(Slot& slot) {
  Workload& wl = *workloads_[static_cast<std::size_t>(slot.workload)];
  slot.game_id = wl.next_game_index++;
  --wl.pending;
  --pending_games_;
  ++wl.active;
  ++active_games_;
  slot.search_seconds = 0.0;
  // Seed from the template; worker_loop refreshes this from the engine's
  // committed scheme after every move the slot plays.
  slot.live_inflight = wl.inflight;
  for (Lane& lane : lanes_) {
    if (lane.model_id == wl.model_id) {
      ++lane.live_games;
      lane.inflight_sum += slot.live_inflight;
      sync_lane_tt_locked(lane);
      break;
    }
  }
  retune_locked(wl.model_id);  // a game attached: the producer pool grew
}

void MatchService::build_slot(Slot& slot) {
  // Runs outside the lock on the exclusively-owned slot; everything read
  // here (workload specs, pool_, res_) is immutable after construction.
  //
  // Per-game seeds are a pure function of (workload, per-workload game
  // index), so a game's move sequence is independent of the worker count,
  // of scheduling order, and of which of the workload's slots seated it.
  const Workload& wl = *workloads_[static_cast<std::size_t>(slot.workload)];
  EngineConfig ec = wl.spec.engine;
  // The service (or its aggregate controller) owns queue thresholds;
  // per-game engines must not re-tune them on their own scheme switches.
  ec.manage_batch_threshold = false;
  ec.mcts.seed = wl.spec.engine.mcts.seed +
                 static_cast<std::uint64_t>(slot.game_id) *
                     cfg_.engine_seed_stride;
  SelfPlayConfig sp = wl.spec.self_play;
  sp.seed = wl.spec.self_play.seed +
            static_cast<std::uint64_t>(slot.game_id) * cfg_.game_seed_stride;

  SearchResources res = res_;
  if (pool_ != nullptr) {
    res = SearchResources{};
    res.batch = &pool_->queue(wl.model_id);
    // The lane's shared transposition memory (if declared): every engine
    // this lane seats grafts from — and stores into — the same table, so
    // sibling games dedupe whole expansions, not just NN calls. tt_shared
    // tells the engine to bump (never rewind) the lane's generation clock
    // and to leave clearing to the lane owner.
    if (TranspositionTable* tt = pool_->transposition(wl.model_id)) {
      res.tt = tt;
      res.tt_shared = true;
    }
  }
  res.batch_tag = slot.id;  // attribute lane occupancy to this slot
  slot.engine = std::make_unique<SearchEngine>(ec, res);
  slot.runner = std::make_unique<EpisodeRunner>(*wl.spec.proto, sp);
}

GameRecord MatchService::retire_slot(Slot& slot, bool completed) const {
  const Workload& wl = *workloads_[static_cast<std::size_t>(slot.workload)];
  GameRecord rec;
  rec.game_id = slot.game_id;
  rec.workload = slot.workload;
  rec.game_name = wl.spec.proto->name();
  if (pool_ != nullptr) rec.model = wl.spec.model;
  rec.completed = completed;
  EpisodeStats stats = slot.runner->finish(
      [&rec](TrainSample&& s) { rec.samples.push_back(std::move(s)); });
  fold_engine_trace(stats, *slot.engine, 0);
  rec.stats = std::move(stats);
  return rec;
}

void MatchService::commit_locked(Slot& slot, GameRecord&& rec) {
  Workload& wl = *workloads_[static_cast<std::size_t>(slot.workload)];
  if (rec.completed) {
    ++games_completed_;
    ++wl.completed;
  } else {
    ++games_abandoned_;
    ++wl.abandoned;
  }
  --wl.active;
  --active_games_;
  moves_ += rec.stats.moves;
  wl.moves += rec.stats.moves;
  samples_ += rec.stats.samples;
  scheme_switches_ += rec.stats.scheme_switches;
  reused_visits_ += rec.stats.reused_visits;
  search_seconds_ += slot.search_seconds;
  for (const EngineMoveStats& m : rec.stats.per_move) {
    eval_requests_ += m.metrics.eval_requests;
    cache_hits_ += m.metrics.cache_hits;
    coalesced_evals_ += m.metrics.coalesced_evals;
    tt_grafts_ += m.metrics.tt_grafts;
  }
  completed_.push_back(std::move(rec));

  slot.engine.reset();
  slot.runner.reset();
  slot.game_id = -1;
  wl.free_slots.push_back(&slot);
  for (Lane& lane : lanes_) {
    if (lane.model_id == wl.model_id) {
      --lane.live_games;
      lane.inflight_sum -= slot.live_inflight;
      sync_lane_tt_locked(lane);
      break;
    }
  }
  retune_locked(wl.model_id);  // a game retired: the producer pool shrank
}

void MatchService::retune_locked(int model_id) {
  if (controller_ == nullptr || pool_ == nullptr || !started_) return;
  const double now = wall_timer_.elapsed_seconds();
  for (Lane& lane : lanes_) {
    if (model_id >= 0 && lane.model_id != model_id) continue;
    AsyncBatchEvaluator& queue = pool_->queue(lane.model_id);
    const BatchQueueStats snap = queue.stats();
    const std::uint64_t window_arrivals =
        snap.submitted - lane.last_window.submitted;
    const double window_seconds = now - lane.last_window_seconds;
    // Dedupe measured at queue granularity over the whole service era: the
    // fraction of arrived demand that needed no batch slot — the
    // ProfiledCosts::cache_hit_rate analogue the arrival model scales the
    // unique pool by.
    const BatchQueueStats delta = stats_delta(snap, lane.start);
    const double demand = static_cast<double>(
        delta.submitted + delta.cache_hits + delta.coalesced);
    const double hit_rate =
        demand > 0.0
            ? static_cast<double>(delta.cache_hits + delta.coalesced) / demand
            : 0.0;
    LaneObservation obs;
    obs.live_games = lane.live_games;
    obs.inflight = lane.live_games > 0 ? lane.inflight_sum / lane.live_games
                                       : 1.0;
    obs.hit_rate = hit_rate;
    obs.tt_graft_rate =
        lane.tt_demand > 0
            ? static_cast<double>(lane.tt_grafts) /
                  static_cast<double>(lane.tt_demand)
            : 0.0;
    obs.window_slot_arrivals = window_arrivals;
    obs.window_seconds = window_seconds;
    obs.stale_flush_us = queue.stale_flush_us();
    InferenceBackend& backend = pool_->backend(lane.model_id);
    const ThresholdDecision d = controller_->observe(
        lane.model_id, now, obs,
        [&backend](int b) { return backend.model_batch_us(b); },
        queue.batch_threshold());
    if (d.changed) queue.set_batch_threshold(d.to);
    lane.last_window = snap;
    lane.last_window_seconds = now;
  }
}

void MatchService::sync_lane_tt_locked(const Lane& lane) {
  if (pool_ == nullptr || lane.model_id < 0) return;
  if (TranspositionTable* tt = pool_->transposition(lane.model_id)) {
    tt->set_lane_inflight(std::max(0.0, lane.inflight_sum));
  }
}

void MatchService::worker_loop() {
  // Names this worker's trace track. Only when tracing is already on at
  // worker startup: a tracing-off service must not allocate ring buffers.
  if (obs::tracing_enabled()) obs::set_thread_name("svc.worker");
  // Watchdog heartbeat: one slot per worker, beaten once per committed
  // move; the cv wait below is marked idle so a drained service never
  // reads as stalled (ISSUE 10's false-positive guard).
  obs::HeartbeatLease hb("svc.worker");
  std::unique_lock lock(mutex_);
  for (;;) {
    {
      obs::IdleScope idle(hb.get());
      work_cv_.wait(lock, [&] {
        return stop_ || !ready_.empty() || seatable_locked();
      });
    }
    if (stop_) return;

    Slot* slot = nullptr;
    bool fresh = false;
    if (!ready_.empty()) {
      slot = ready_.front();
      ready_.pop_front();
    } else {
      for (const std::unique_ptr<Workload>& wl : workloads_) {
        if (wl->pending > 0 && !wl->free_slots.empty()) {
          slot = wl->free_slots.back();
          wl->free_slots.pop_back();
          break;
        }
      }
      claim_locked(*slot);
      fresh = true;
    }
    // More work may remain (another ready slot, another seatable game) —
    // hand it to a sibling before going heads-down on this move.
    if (!ready_.empty() || seatable_locked()) {
      work_cv_.notify_one();
    }
    lock.unlock();
    if (fresh) build_slot(*slot);

    // The move runs outside the lock; `slot` is exclusively ours until we
    // requeue it. Tree reuse: the played action is fed back via advance().
    // One clock pair serves the search-seconds aggregate, the per-move
    // latency histogram, and the "move" trace span (which nests the
    // engine.search span recorded inside).
    const std::uint64_t move_start = obs::now_ns();
    slot->runner->step(
        [&](const Game& env) { return slot->engine->search(env); },
        [&](int action) { slot->engine->advance(action); });
    const std::uint64_t move_end = obs::now_ns();
    hist_move_ns_.record(move_end - move_start);
    hb->beat();  // one unit of progress = one committed move
    obs::emit_span("move", "serve", move_start, move_end,
                   {{"slot", slot->id},
                    {"workload", slot->workload},
                    {"game", slot->game_id}});
    slot->search_seconds +=
        static_cast<double>(move_end - move_start) * 1e-9;

    // The just-played move's TT traffic, folded into the lane's graft rate
    // below (under the lock) so retune_locked sees a live signal.
    std::uint64_t move_grafts = 0;
    std::uint64_t move_requests = 0;
    if (!slot->engine->move_log().empty()) {
      const SearchMetrics& last = slot->engine->move_log().back().metrics;
      move_grafts = last.tt_grafts;
      move_requests = last.eval_requests;
    }

    const bool done = slot->runner->done();
    GameRecord rec;
    double live = 0.0;
    // wl is immutable after construction; read it outside the lock.
    const Workload& wl = *workloads_[static_cast<std::size_t>(slot->workload)];
    if (done) {
      // Retire outside the lock too (augmentation copies samples).
      rec = retire_slot(*slot, /*completed=*/true);
    } else {
      // The engine's AdaptiveController may just have migrated this game to
      // a different scheme; re-read the COMMITTED configuration so the
      // lane's inflight sum tracks what the game now actually keeps in
      // flight, not the template it was seated with.
      live = scheme_inflight(slot->engine->scheme(), slot->engine->workers(),
                             slot->engine->batch_threshold(),
                             wl.spec.engine.adaptive.gpu);
    }

    lock.lock();
    for (Lane& lane : lanes_) {
      if (lane.model_id == wl.model_id) {
        lane.tt_grafts += move_grafts;
        lane.tt_demand += move_grafts + move_requests;
        break;
      }
    }
    if (done) {
      commit_locked(*slot, std::move(rec));
      if (pending_games_ > 0) {
        work_cv_.notify_one();  // the freed slot is seatable
      } else if (active_games_ == 0) {
        idle_cv_.notify_all();
      }
    } else {
      for (Lane& lane : lanes_) {
        if (lane.model_id == wl.model_id) {
          lane.inflight_sum += live - slot->live_inflight;
          sync_lane_tt_locked(lane);
          break;
        }
      }
      slot->live_inflight = live;
      ready_.push_back(slot);
      // Periodic cadence between attach/retire events: live lanes' arrival
      // rates drift as trees warm and dedupe rises; re-decide every M
      // committed moves.
      ++interim_moves_;
      if (controller_ != nullptr && cfg_.aggregate.retune_every_moves > 0 &&
          interim_moves_ - last_retune_moves_ >=
              cfg_.aggregate.retune_every_moves) {
        last_retune_moves_ = interim_moves_;
        retune_locked(/*model_id=*/-1);
      }
    }
  }
}

void MatchService::drain() {
  std::unique_lock lock(mutex_);
  APM_CHECK_MSG(started_ || (pending_games_ == 0 && active_games_ == 0),
                "MatchService: drain() before start()");
  idle_cv_.wait(lock, [&] {
    return stop_ || (pending_games_ == 0 && active_games_ == 0);
  });
}

void MatchService::stop() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock lock(mutex_);
    if (stopping_) {
      // A racing stop() owns the teardown (threads_ was swapped out —
      // joining here would double-join); wait for it to finish instead.
      stopped_cv_.wait(lock, [&] { return stopped_; });
      return;
    }
    stopping_ = true;
    stop_ = true;
    if (started_) final_wall_seconds_ = wall_timer_.elapsed_seconds();
    to_join.swap(threads_);
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  // Workers finish their in-flight move, then exit. A worker blocked on a
  // shared-queue future is woken by the stale-flush timer (required at
  // construction), so the join below is bounded by one move's tail.
  for (std::thread& t : to_join) t.join();

  std::lock_guard lock(mutex_);
  ready_.clear();
  for (const std::unique_ptr<Slot>& slot : slots_) {
    if (slot->game_id < 0) continue;
    // Retire the abandoned game as a completed=false record: the moves it
    // played (and its adaptation trace) stay observable, and callers can
    // filter its truncated samples by the flag.
    commit_locked(*slot, retire_slot(*slot, /*completed=*/false));
  }
  stopped_ = true;
  stopped_cv_.notify_all();
}

std::vector<GameRecord> MatchService::take_completed() {
  std::vector<GameRecord> out;
  {
    std::lock_guard lock(mutex_);
    out.swap(completed_);
  }
  std::sort(out.begin(), out.end(),
            [](const GameRecord& a, const GameRecord& b) {
              return a.workload != b.workload ? a.workload < b.workload
                                              : a.game_id < b.game_id;
            });
  return out;
}

void MatchService::invalidate_model(int model_id) {
  if (pool_ != nullptr) {
    if (model_id < 0) {
      pool_->invalidate_all();
    } else {
      pool_->invalidate(model_id);
    }
    return;
  }
  if (EvalCache* cache = eval_cache()) cache->clear();
}

std::vector<ThresholdDecision> MatchService::retune_log() const {
  std::lock_guard lock(mutex_);
  return controller_ != nullptr ? controller_->log()
                                : std::vector<ThresholdDecision>{};
}

std::uint64_t MatchService::retune_log_dropped() const {
  std::lock_guard lock(mutex_);
  return controller_ != nullptr ? controller_->log_dropped() : 0;
}

void MatchService::publish_metrics() {
  // Each publish call is one SLO evaluation window: advance every
  // SLO-bearing lane's health state over the request latency recorded
  // since the previous call (the queue histogram delta).
  {
    std::lock_guard lock(mutex_);
    for (Lane& lane : lanes_) {
      if (lane.slo == nullptr) continue;
      const AsyncBatchEvaluator* queue =
          pool_ != nullptr ? &pool_->queue(lane.model_id) : res_.batch;
      if (queue == nullptr) continue;
      const obs::HistogramSnapshot cur = queue->request_histogram();
      const obs::HistogramSnapshot window = cur.delta(lane.slo_last);
      lane.slo_last = cur;
      lane.health = lane.slo->update(window);
      lane.slo_window_p99_us = lane.slo->last_p99_us();
      lane.slo_burn = lane.slo->burn_rate();
    }
  }

  const ServiceStats s = stats();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  reg.counter("service.moves").set(static_cast<std::uint64_t>(s.moves));
  reg.counter("service.games_completed")
      .set(static_cast<std::uint64_t>(s.games_completed));
  reg.counter("service.eval_requests").set(s.eval_requests);
  reg.counter("service.cache_hits").set(s.cache_hits);
  reg.counter("service.coalesced_evals").set(s.coalesced_evals);
  reg.counter("service.tt_grafts").set(s.tt_grafts);
  reg.counter("service.threshold_retunes")
      .set(static_cast<std::uint64_t>(s.threshold_retunes));
  reg.gauge("service.cache_hit_rate").set(s.cache_hit_rate);
  reg.gauge("service.tt_graft_rate").set(s.tt_graft_rate);
  reg.gauge("service.mean_batch_fill").set(s.mean_batch_fill);
  reg.gauge("service.moves_per_second").set(s.moves_per_second);
  reg.gauge("service.evals_per_second").set(s.evals_per_second);
  reg.set_histogram("service.move_latency_ns", s.move_latency_ns);
  reg.set_histogram("service.request_latency_ns", s.request_latency_ns);
  reg.set_histogram("service.batch_wait_ns", s.batch_wait_ns);
  reg.set_histogram("service.backend_eval_ns", s.backend_eval_ns);
  // Per-lane latency shards and SLO health (pool mode): the telemetry
  // sampler reads everything — aggregate and per-lane — from the registry,
  // so publish the lane views under their lane names too. Health is a
  // gauge (0=healthy 1=warn 2=breach); the sampler's worst_health() and
  // the watchdog's breach feed key off the ".health" suffix.
  for (const ServiceLaneStats& ls : s.lanes) {
    const std::string p = "service." + ls.model + ".";
    reg.set_histogram(p + "request_latency_ns", ls.request_latency_ns);
    reg.set_histogram(p + "batch_wait_ns", ls.batch_wait_ns);
    reg.set_histogram(p + "backend_eval_ns", ls.backend_eval_ns);
    if (ls.slo_enabled) {
      reg.gauge(p + "health").set(static_cast<double>(ls.health));
      reg.gauge(p + "slo_burn").set(ls.slo_burn);
      reg.gauge(p + "slo_window_p99_us").set(ls.slo_window_p99_us);
    }
  }
  // Per-lane shared-TT telemetry (pool mode, TT-bearing lanes only): the
  // table's own counters plus the service's leaf-only graft fold, keyed by
  // lane name so heterogeneous services stay disentangled.
  for (const ServiceLaneStats& ls : s.lanes) {
    if (!ls.tt_shared) continue;
    const std::string p = "service." + ls.model + ".tt.";
    reg.counter(p + "probes").set(ls.tt.probes);
    reg.counter(p + "hits").set(ls.tt.hits);
    reg.counter(p + "pending").set(ls.tt.pending);
    reg.counter(p + "stores").set(ls.tt.stores);
    reg.counter(p + "grafts").set(ls.tt_grafts);
    reg.gauge(p + "entries").set(static_cast<double>(ls.tt.entries));
    reg.gauge(p + "occupancy")
        .set(ls.tt.capacity > 0
                 ? static_cast<double>(ls.tt.entries) /
                       static_cast<double>(ls.tt.capacity)
                 : 0.0);
    reg.gauge(p + "graft_rate").set(ls.tt_graft_rate);
  }
}

ServiceStats MatchService::stats() const {
  std::lock_guard lock(mutex_);
  ServiceStats s;
  s.slots = total_slots_;
  s.workers = cfg_.workers;
  s.games_completed = games_completed_;
  s.games_abandoned = games_abandoned_;
  s.games_pending = pending_games_;
  s.games_active = active_games_;
  s.moves = moves_;
  s.samples = samples_;
  s.eval_requests = eval_requests_;
  s.cache_hits = cache_hits_;
  s.coalesced_evals = coalesced_evals_;
  if (eval_requests_ > 0) {
    s.cache_hit_rate =
        static_cast<double>(cache_hits_ + coalesced_evals_) /
        static_cast<double>(eval_requests_);
  }
  s.tt_grafts = tt_grafts_;
  if (tt_grafts_ + eval_requests_ > 0) {
    s.tt_graft_rate = static_cast<double>(tt_grafts_) /
                      static_cast<double>(tt_grafts_ + eval_requests_);
  }
  s.scheme_switches = scheme_switches_;
  s.reused_visits = reused_visits_;
  s.search_seconds = search_seconds_;
  s.wall_seconds =
      started_ && !stop_ ? wall_timer_.elapsed_seconds() : final_wall_seconds_;
  if (s.wall_seconds > 0.0) {
    s.moves_per_second = s.moves / s.wall_seconds;
    s.evals_per_second = static_cast<double>(s.eval_requests) / s.wall_seconds;
  }

  for (const Lane& lane : lanes_) {
    const AsyncBatchEvaluator* queue =
        pool_ != nullptr ? &pool_->queue(lane.model_id) : res_.batch;
    if (queue == nullptr) continue;
    const BatchQueueStats delta = stats_delta(queue->stats(), lane.start);
    accumulate(s.batch, delta);
    // Era-window latency shards: the queue's lifetime histograms minus the
    // construction baselines, merged across lanes (and kept per lane).
    const obs::HistogramSnapshot req_delta =
        queue->request_histogram().delta(lane.start_request);
    const obs::HistogramSnapshot wait_delta =
        queue->batch_wait_histogram().delta(lane.start_batch_wait);
    const obs::HistogramSnapshot backend_delta =
        queue->backend_histogram().delta(lane.start_backend);
    s.request_latency_ns.merge(req_delta);
    s.batch_wait_ns.merge(wait_delta);
    s.backend_eval_ns.merge(backend_delta);
    const EvalCache* cache = pool_ != nullptr ? pool_->cache(lane.model_id)
                                              : queue->cache();
    if (cache != nullptr) accumulate(s.cache, cache->stats());
    if (pool_ != nullptr) {
      ServiceLaneStats ls;
      ls.model_id = lane.model_id;
      ls.model = pool_->name(lane.model_id);
      ls.precision = pool_->precision(lane.model_id);
      ls.live_games = lane.live_games;
      ls.live_inflight = lane.inflight_sum;
      ls.threshold = queue->batch_threshold();
      ls.retunes =
          controller_ != nullptr ? controller_->retunes(lane.model_id) : 0;
      ls.tt_graft_rate =
          lane.tt_demand > 0
              ? static_cast<double>(lane.tt_grafts) /
                    static_cast<double>(lane.tt_demand)
              : 0.0;
      ls.tt_grafts = lane.tt_grafts;
      ls.tt_demand = lane.tt_demand;
      if (const TranspositionTable* tt =
              pool_->transposition(lane.model_id)) {
        ls.tt_shared = true;
        ls.tt = tt->stats();
      }
      ls.batch = delta;
      if (cache != nullptr) ls.cache = cache->stats();
      ls.request_latency_ns = req_delta;
      ls.batch_wait_ns = wait_delta;
      ls.backend_eval_ns = backend_delta;
      if (lane.slo != nullptr) {
        ls.slo_enabled = true;
        ls.health = lane.health;
        ls.slo_window_p99_us = lane.slo_window_p99_us;
        ls.slo_burn = lane.slo_burn;
      }
      s.lanes.push_back(std::move(ls));
    }
  }
  s.batch.mean_batch =
      s.batch.batches > 0
          ? static_cast<double>(s.batch.submitted) /
                static_cast<double>(s.batch.batches)
          : 0.0;
  s.mean_batch_fill = s.batch.mean_batch;
  s.threshold_retunes =
      controller_ != nullptr ? controller_->total_retunes() : 0;

  s.move_latency_ns = hist_move_ns_.snapshot();
  s.move_latency_p50_ms = s.move_latency_ns.quantile(0.5) * 1e-6;
  s.move_latency_p99_ms = s.move_latency_ns.quantile(0.99) * 1e-6;
  s.request_latency_p50_us = s.request_latency_ns.quantile(0.5) * 1e-3;
  s.request_latency_p99_us = s.request_latency_ns.quantile(0.99) * 1e-3;

  for (std::size_t w = 0; w < workloads_.size(); ++w) {
    const Workload& wl = *workloads_[w];
    WorkloadStats ws;
    ws.workload = static_cast<int>(w);
    ws.game_name = wl.spec.proto->name();
    if (pool_ != nullptr) ws.model = wl.spec.model;
    ws.slots = wl.spec.slots;
    ws.games_completed = wl.completed;
    ws.games_abandoned = wl.abandoned;
    ws.games_pending = wl.pending;
    ws.games_active = wl.active;
    ws.moves = wl.moves;
    s.workloads.push_back(std::move(ws));
  }
  return s;
}

}  // namespace apm
