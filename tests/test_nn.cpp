// NN-layer tests: forward passes vs naive references, finite-difference
// gradient checks, loss behaviour, optimizer, serialization, thread-safe
// inference.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/policy_value_net.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace apm {
namespace {

// Naive direct convolution (stride 1, same padding) for cross-checking.
void naive_conv(const Tensor& x, const Param& w, const Param& b, int cin,
                int cout, int ksize, Tensor& y) {
  const int batch = x.dim(0), h = x.dim(2), ww = x.dim(3);
  const int pad = ksize / 2;
  y.resize({batch, cout, h, ww});
  for (int n = 0; n < batch; ++n)
    for (int oc = 0; oc < cout; ++oc)
      for (int oy = 0; oy < h; ++oy)
        for (int ox = 0; ox < ww; ++ox) {
          double acc = b.value[oc];
          for (int ic = 0; ic < cin; ++ic)
            for (int ky = 0; ky < ksize; ++ky)
              for (int kx = 0; kx < ksize; ++kx) {
                const int iy = oy + ky - pad, ix = ox + kx - pad;
                if (iy < 0 || iy >= h || ix < 0 || ix >= ww) continue;
                const float xv =
                    x[((static_cast<std::size_t>(n) * cin + ic) * h + iy) *
                          ww +
                      ix];
                const float wv =
                    w.value[(static_cast<std::size_t>(oc) * cin + ic) *
                                ksize * ksize +
                            ky * ksize + kx];
                acc += static_cast<double>(xv) * wv;
              }
          y[((static_cast<std::size_t>(n) * cout + oc) * h + oy) * ww + ox] =
              static_cast<float>(acc);
        }
}

TEST(Conv2d, MatchesNaiveConvolution) {
  Rng rng(10);
  Conv2d conv("c", 3, 5, 3);
  conv.init(rng);
  Tensor x = Tensor::randn({2, 3, 6, 7}, rng, 1.0f);
  Tensor y;
  ConvWorkspace ws;
  conv.forward(x, y, ws);
  Tensor expect;
  naive_conv(x, conv.weight(), conv.bias(), 3, 5, 3, expect);
  EXPECT_LT(max_abs_diff(y, expect), 1e-3f);
}

TEST(Conv2d, OneByOneKernelIsChannelMix) {
  Rng rng(11);
  Conv2d conv("c", 4, 2, 1);
  conv.init(rng);
  Tensor x = Tensor::randn({1, 4, 3, 3}, rng, 1.0f);
  Tensor y;
  ConvWorkspace ws;
  conv.forward(x, y, ws);
  Tensor expect;
  naive_conv(x, conv.weight(), conv.bias(), 4, 2, 1, expect);
  EXPECT_LT(max_abs_diff(y, expect), 1e-4f);
}

TEST(Conv2d, BatchedForwardMatchesPerSamplePath) {
  // The whole-batch im2col + single-GEMM path must agree with running the
  // same convolution one sample at a time (the seed's per-sample scheme) —
  // ISSUE-1 acceptance bound: 1e-4 max-abs-diff.
  Rng rng(14);
  Conv2d conv("c", 3, 6, 3);
  conv.init(rng);
  const int batch = 5, h = 9, w = 9;
  Tensor x = Tensor::randn({batch, 3, h, w}, rng, 1.0f);

  Tensor y_batched;
  ConvWorkspace ws;
  conv.forward(x, y_batched, ws);

  const std::size_t sample = static_cast<std::size_t>(3) * h * w;
  Tensor xi({1, 3, h, w}), yi;
  ConvWorkspace ws1;
  for (int b = 0; b < batch; ++b) {
    std::memcpy(xi.data(), x.data() + b * sample, sample * sizeof(float));
    conv.forward(xi, yi, ws1);
    float mx = 0.0f;
    const float* yb =
        y_batched.data() + static_cast<std::size_t>(b) * yi.numel();
    for (std::size_t i = 0; i < yi.numel(); ++i)
      mx = std::max(mx, std::fabs(yb[i] - yi[i]));
    EXPECT_LT(mx, 1e-4f) << "sample " << b;
  }
}

TEST(PolicyValueNet, BatchedPredictMatchesPerSample) {
  const NetConfig cfg = NetConfig::tiny(7);
  PolicyValueNet net(cfg, 33);
  Rng rng(34);
  const int batch = 6;
  Tensor x = Tensor::randn({batch, cfg.in_channels, 7, 7}, rng, 1.0f);
  Activations acts;
  Tensor policy, value;
  net.predict(x, acts, policy, value);

  const std::size_t sample =
      static_cast<std::size_t>(cfg.in_channels) * 7 * 7;
  Tensor xi({1, cfg.in_channels, 7, 7});
  Activations acts1;
  Tensor p1, v1;
  for (int b = 0; b < batch; ++b) {
    std::memcpy(xi.data(), x.data() + b * sample, sample * sizeof(float));
    net.predict(xi, acts1, p1, v1);
    for (int a = 0; a < cfg.actions(); ++a) {
      ASSERT_NEAR(policy.at2(b, a), p1[a], 1e-4f) << "b=" << b << " a=" << a;
    }
    ASSERT_NEAR(value[b], v1[0], 1e-4f) << "b=" << b;
  }
}

TEST(Conv2d, FusedReluMatchesSeparateRelu) {
  Rng rng(15);
  Conv2d conv("c", 2, 4, 3);
  conv.init(rng);
  Tensor x = Tensor::randn({3, 2, 6, 5}, rng, 1.0f);
  ConvWorkspace ws;
  Tensor y_plain, y_fused;
  conv.forward(x, y_plain, ws);
  conv.forward(x, y_fused, ws, nullptr, /*fuse_relu=*/true);
  Tensor expect(y_plain.shape());
  relu_forward(y_plain.data(), expect.data(), y_plain.numel());
  EXPECT_EQ(max_abs_diff(y_fused, expect), 0.0f);
}

TEST(Conv2d, BatchedColCacheMatchesPerSampleIm2col) {
  // Training keeps per-sample columns; slicing them out of the batch-major
  // buffer must reproduce exactly what per-sample im2col produces.
  Rng rng(16);
  Conv2d conv("c", 2, 3, 3);
  conv.init(rng);
  const int batch = 4, h = 5, w = 6;
  const int kk = 2 * 3 * 3, hw = h * w;
  Tensor x = Tensor::randn({batch, 2, h, w}, rng, 1.0f);
  Tensor y, cache;
  ConvWorkspace ws;
  conv.forward(x, y, ws, &cache);
  ASSERT_EQ(cache.dim(0), batch);
  std::vector<float> single(static_cast<std::size_t>(kk) * hw);
  for (int b = 0; b < batch; ++b) {
    im2col(x.data() + static_cast<std::size_t>(b) * 2 * hw, 2, h, w, 3, 1,
           single.data());
    const float* cb = cache.data() + static_cast<std::size_t>(b) * kk * hw;
    for (std::size_t i = 0; i < single.size(); ++i)
      ASSERT_EQ(cb[i], single[i]) << "b=" << b << " i=" << i;
  }
}

TEST(Linear, FusedReluMatchesSeparateRelu) {
  Rng rng(13);
  Linear fc("f", 11, 6);
  fc.init(rng);
  // Non-zero bias so the fused epilogue's bias term is exercised.
  fc.params()[1]->value.fill_randn(rng, 0.5f);
  Tensor x = Tensor::randn({4, 11}, rng, 1.0f);
  Tensor y_plain, y_fused;
  fc.forward(x, y_plain);
  fc.forward(x, y_fused, /*fuse_relu=*/true);
  Tensor expect(y_plain.shape());
  relu_forward(y_plain.data(), expect.data(), y_plain.numel());
  EXPECT_EQ(max_abs_diff(y_fused, expect), 0.0f);
}

TEST(Linear, MatchesNaiveAffine) {
  Rng rng(12);
  Linear fc("f", 7, 4);
  fc.init(rng);
  Tensor x = Tensor::randn({3, 7}, rng, 1.0f);
  Tensor y;
  fc.forward(x, y);
  for (int b = 0; b < 3; ++b)
    for (int o = 0; o < 4; ++o) {
      double acc = fc.weight().value[o * 7];  // placeholder init below
      acc = 0;
      for (int i = 0; i < 7; ++i)
        acc += static_cast<double>(x.at2(b, i)) *
               fc.weight().value[static_cast<std::size_t>(o) * 7 + i];
      ASSERT_NEAR(y.at2(b, o), acc, 1e-4);  // bias is zero after init
    }
}

// Finite-difference gradient check for the full network loss. This is the
// strongest correctness statement about the training path: every layer's
// backward must be right for it to pass.
TEST(PolicyValueNet, GradientsMatchFiniteDifferences) {
  const NetConfig cfg = NetConfig::tiny(4);
  PolicyValueNet net(cfg, 21);
  Rng rng(22);
  const int batch = 2;
  Tensor x = Tensor::randn({batch, cfg.in_channels, 4, 4}, rng, 0.5f);
  Tensor pi({batch, cfg.actions()});
  for (int b = 0; b < batch; ++b) {
    float total = 0;
    for (int a = 0; a < cfg.actions(); ++a) {
      pi.at2(b, a) = rng.uniform_float() + 0.01f;
      total += pi.at2(b, a);
    }
    for (int a = 0; a < cfg.actions(); ++a) pi.at2(b, a) /= total;
  }
  Tensor z({batch});
  z[0] = 0.5f;
  z[1] = -0.3f;

  Activations acts;
  net.zero_grad();
  const LossParts loss = net.train_step(x, pi, z, acts);
  ASSERT_TRUE(std::isfinite(loss.total));

  // Snapshot analytic gradients before the FD probes re-run train_step
  // (which accumulates into the grad tensors).
  auto params = net.params();
  std::vector<std::vector<float>> analytic(params.size());
  for (std::size_t pi_idx = 0; pi_idx < params.size(); ++pi_idx) {
    Param* p = params[pi_idx];
    analytic[pi_idx].assign(p->grad.data(), p->grad.data() + p->numel());
  }

  const float eps = 1e-3f;
  int checked = 0;
  for (std::size_t pi_idx = 0; pi_idx < params.size(); ++pi_idx) {
    Param* p = params[pi_idx];
    for (std::size_t idx : {std::size_t{0}, p->numel() / 2, p->numel() - 1}) {
      const float saved = p->value[idx];
      p->value[idx] = saved + eps;
      Activations tmp;
      const LossParts up = net.train_step(x, pi, z, tmp);
      p->value[idx] = saved - eps;
      const LossParts down = net.train_step(x, pi, z, tmp);
      p->value[idx] = saved;
      const float numeric = (up.total - down.total) / (2 * eps);
      EXPECT_NEAR(analytic[pi_idx][idx], numeric,
                  5e-2f + 0.05f * std::fabs(numeric))
          << p->name << "[" << idx << "]";
      ++checked;
    }
  }
  EXPECT_GE(checked, 3 * 16);
}

TEST(PolicyValueNet, ForwardShapesAndRanges) {
  const NetConfig cfg = NetConfig::tiny(5);
  PolicyValueNet net(cfg, 5);
  Rng rng(2);
  Tensor x = Tensor::randn({3, cfg.in_channels, 5, 5}, rng, 1.0f);
  Activations acts;
  Tensor policy, value;
  net.predict(x, acts, policy, value);
  ASSERT_EQ(policy.dim(0), 3);
  ASSERT_EQ(policy.dim(1), 25);
  for (int b = 0; b < 3; ++b) {
    float total = 0;
    for (int a = 0; a < 25; ++a) {
      ASSERT_GE(policy.at2(b, a), 0.0f);
      total += policy.at2(b, a);
    }
    EXPECT_NEAR(total, 1.0f, 1e-4f);
    EXPECT_GT(value[b], -1.0f);
    EXPECT_LT(value[b], 1.0f);
  }
}

TEST(PolicyValueNet, ActionOverrideNarrowsPolicyHead) {
  // Connect4-shaped head: a 6x7 board with 7 column actions. Every policy
  // consumer goes through NetConfig::actions(), so the override must flow
  // into predict() widths, normalisation, training, and checkpoints.
  NetConfig cfg = NetConfig::tiny(6);
  cfg.width = 7;
  cfg.action_override = 7;
  ASSERT_EQ(cfg.actions(), 7);
  PolicyValueNet net(cfg, 9);
  Rng rng(10);
  Tensor x = Tensor::randn({2, cfg.in_channels, 6, 7}, rng, 1.0f);
  Activations acts;
  Tensor policy, value;
  net.predict(x, acts, policy, value);
  ASSERT_EQ(policy.dim(1), 7);
  for (int b = 0; b < 2; ++b) {
    float total = 0;
    for (int a = 0; a < 7; ++a) total += policy.at2(b, a);
    EXPECT_NEAR(total, 1.0f, 1e-4f);
  }
  // One train step against 7-way targets runs through the same head.
  Tensor pi = Tensor::zeros({2, 7});
  pi.at2(0, 3) = 1.0f;
  pi.at2(1, 6) = 1.0f;
  Tensor z({2});
  z[0] = 0.5f;
  z[1] = -0.5f;
  net.zero_grad();
  const LossParts parts = net.train_step(x, pi, z, acts);
  EXPECT_TRUE(std::isfinite(parts.total));
  // Checkpoints carry the override (format v2) and round-trip the weights.
  PolicyValueNet twin(cfg, 77);
  std::stringstream stream;
  save_net(net, stream);
  const NetConfig peeked = peek_net_config(stream);
  EXPECT_EQ(peeked, cfg);
  stream.seekg(0);
  load_net(twin, stream);
  auto pa = net.params();
  auto pb = twin.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(max_abs_diff(pa[i]->value, pb[i]->value), 1e-9f);
  }
}

TEST(PolicyValueNet, TrainingReducesLossOnFixedBatch) {
  const NetConfig cfg = NetConfig::tiny(4);
  PolicyValueNet net(cfg, 33);
  Rng rng(34);
  const int batch = 8;
  Tensor x = Tensor::randn({batch, cfg.in_channels, 4, 4}, rng, 0.7f);
  Tensor pi = Tensor::zeros({batch, cfg.actions()});
  Tensor z({batch});
  for (int b = 0; b < batch; ++b) {
    pi.at2(b, b % cfg.actions()) = 1.0f;  // one-hot targets
    z[b] = (b % 2 == 0) ? 0.8f : -0.8f;
  }
  SgdConfig sgd;
  sgd.lr = 0.01f;
  sgd.momentum = 0.9f;
  sgd.weight_decay = 0.0f;
  SgdOptimizer opt(net.params(), sgd);
  Activations acts;

  net.zero_grad();
  const float initial = net.train_step(x, pi, z, acts).total;
  opt.step();
  float final_loss = initial;
  for (int step = 0; step < 200; ++step) {
    net.zero_grad();
    final_loss = net.train_step(x, pi, z, acts).total;
    opt.step();
  }
  EXPECT_LT(final_loss, initial * 0.5f) << "no learning progress";
}

TEST(PolicyValueNet, ParameterCountMatchesArchitecture) {
  NetConfig cfg;  // paper configuration: 15×15, 5 conv + 3 FC
  PolicyValueNet net(cfg, 1);
  // conv1 4→32 (3x3): 32*36+32 ... just assert the total is stable and
  // the parameter list has 8 layers × 2 tensors.
  EXPECT_EQ(net.params().size(), 16u);
  EXPECT_GT(net.num_parameters(), 100000u);
}

TEST(PolicyValueNet, PredictIsThreadSafe) {
  const NetConfig cfg = NetConfig::tiny(4);
  PolicyValueNet net(cfg, 8);
  Rng rng(9);
  Tensor x = Tensor::randn({1, cfg.in_channels, 4, 4}, rng, 1.0f);

  Activations ref_acts;
  Tensor ref_policy, ref_value;
  net.predict(x, ref_acts, ref_policy, ref_value);

  constexpr int kThreads = 4;
  std::vector<float> values(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Activations acts;
        Tensor policy, value;
        for (int i = 0; i < 20; ++i) net.predict(x, acts, policy, value);
        values[t] = value[0];
      });
    }
  }
  for (float v : values) EXPECT_FLOAT_EQ(v, ref_value[0]);
}

TEST(Serialization, RoundTripsWeights) {
  const NetConfig cfg = NetConfig::tiny(4);
  PolicyValueNet a(cfg, 100);
  PolicyValueNet b(cfg, 200);  // different init

  std::stringstream stream;
  save_net(a, stream);
  load_net(b, stream);

  auto pa = a.params();
  auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(max_abs_diff(pa[i]->value, pb[i]->value), 1e-9f);
  }
}

TEST(Serialization, PeekReadsConfig) {
  const NetConfig cfg = NetConfig::tiny(6);
  PolicyValueNet net(cfg, 1);
  std::stringstream stream;
  save_net(net, stream);
  const NetConfig peeked = peek_net_config(stream);
  EXPECT_EQ(peeked, cfg);
}

TEST(Serialization, RejectsMismatchedConfig) {
  PolicyValueNet a(NetConfig::tiny(4), 1);
  PolicyValueNet b(NetConfig::tiny(5), 1);
  std::stringstream stream;
  save_net(a, stream);
  EXPECT_DEATH(load_net(b, stream), "config mismatch");
}

TEST(Optimizer, MomentumAccumulates) {
  Param p;
  p.init_shape("w", {1});
  p.value[0] = 0.0f;
  p.grad[0] = 1.0f;
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.9f;
  cfg.weight_decay = 0.0f;
  SgdOptimizer opt({&p}, cfg);
  opt.step();  // v = -0.1, w = -0.1
  EXPECT_NEAR(p.value[0], -0.1f, 1e-6f);
  opt.step();  // v = -0.9*0.1 - 0.1 = -0.19, w = -0.29
  EXPECT_NEAR(p.value[0], -0.29f, 1e-6f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Param p;
  p.init_shape("w", {1});
  p.value[0] = 1.0f;
  p.grad[0] = 0.0f;
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.5f;
  SgdOptimizer opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(PolicyValueNet, CopyWeightsProducesIdenticalOutputs) {
  const NetConfig cfg = NetConfig::tiny(4);
  PolicyValueNet a(cfg, 1), b(cfg, 2);
  b.copy_weights_from(a);
  Rng rng(3);
  Tensor x = Tensor::randn({1, cfg.in_channels, 4, 4}, rng, 1.0f);
  Activations acts_a, acts_b;
  Tensor pa, va, pb, vb;
  a.predict(x, acts_a, pa, va);
  b.predict(x, acts_b, pb, vb);
  EXPECT_LT(max_abs_diff(pa, pb), 1e-9f);
  EXPECT_FLOAT_EQ(va[0], vb[0]);
}

}  // namespace
}  // namespace apm
