#include "eval/net_evaluator.hpp"

#include <cstring>

#include "support/check.hpp"
#include "tensor/ops.hpp"

namespace apm {

NetEvaluator::NetEvaluator(const PolicyValueNet& net) : net_(net) {}

int NetEvaluator::action_count() const { return net_.config().actions(); }

std::size_t NetEvaluator::input_size() const {
  const NetConfig& cfg = net_.config();
  return static_cast<std::size_t>(cfg.in_channels) * cfg.height * cfg.width;
}

Activations& NetEvaluator::local_acts() {
  const auto id = std::this_thread::get_id();
  std::lock_guard lock(acts_mutex_);
  auto& slot = acts_[id];
  if (!slot) slot = std::make_unique<Activations>();
  return *slot;
}

void NetEvaluator::evaluate(const float* input, EvalOutput& out) {
  evaluate_batch(input, 1, &out);
}

void NetEvaluator::evaluate_batch(const float* inputs, int n,
                                  EvalOutput* outs) {
  APM_CHECK(n >= 1);
  const NetConfig& cfg = net_.config();
  Activations& acts = local_acts();

  Tensor x({n, cfg.in_channels, cfg.height, cfg.width});
  std::memcpy(x.data(), inputs, x.numel() * sizeof(float));
  Tensor policy, value;
  net_.predict(x, acts, policy, value);

  const int actions = cfg.actions();
  for (int i = 0; i < n; ++i) {
    outs[i].policy.assign(
        policy.data() + static_cast<std::size_t>(i) * actions,
        policy.data() + static_cast<std::size_t>(i + 1) * actions);
    outs[i].value = value[i];
  }
}

}  // namespace apm
