#pragma once
// Low-overhead trace recorder — the event backbone of the unified
// observability plane (ISSUE 8; design note in src/obs/DESIGN_obs.md).
//
// The runtime re-decides parallelism from measured costs (Eq. 3–6,
// Algorithm 4), but means alone cannot show *why*: a retune fires because
// of a queueing timeline — request submitted → coalesced / cache-hit /
// TT-graft → batch formed → backend eval → completion — and that timeline
// is exactly what this recorder captures. Instrumentation is compiled in
// everywhere (queue, cache, TT, engine, service) and runtime-gated: with
// tracing off, every emit call is ONE relaxed atomic load and an early
// return — no clock read, no thread registration, no allocation (pinned by
// test_obs DisabledPathIsAllocationFree and bench/micro_obs).
//
// Write path (tracing on): each thread owns a private fixed-capacity ring
// of POD TraceEvent records, registered on first emit. A write is: one
// relaxed gate load, one steady-clock read (callers of span scopes already
// paid it), a struct store into the ring slot, and a release store of the
// head index — no locks, no CAS, no allocation after the ring exists. The
// ring overwrites its oldest events when full (head keeps counting, so the
// overwritten count is observable as dropped()); a tracing session sized
// by set_trace_capacity() before enabling never drops.
//
// Event strings (name / category / arg keys / string arg values) must be
// STATIC (string literals or otherwise immortal): events store the
// pointers, not copies — that is what keeps a record a fixed-size POD
// store. Up to kMaxArgs numeric args plus one static-string arg per event.
//
// Read path: snapshot_trace() copies every registered ring out under the
// registry mutex. Exact (torn-read-free) snapshots require the writers to
// be quiescent — call it after drain()/stop()/join, or after set_tracing
// (false) once in-flight spans have closed; the intended capture flow
// (examples/trace_capture) snapshots a drained service. Buffers of exited
// threads are retained by the registry so their events survive to the
// snapshot.
//
// Timestamps are steady-clock nanoseconds since the process trace epoch
// (first now_ns() call), shared with the latency histograms and the
// AggregateController's decision stamps so exported retune instants align
// with the span timeline in Perfetto.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace apm::obs {

// Nanoseconds on the process-wide monotonic trace clock.
std::uint64_t now_ns();

// The global gate. Reading is a single relaxed atomic load (hot paths);
// toggling is release so a freshly enabled session orders after setup.
bool tracing_enabled();
void set_tracing(bool on);

// Per-thread ring capacity (events) for buffers created AFTER the call.
// Call before set_tracing(true); existing buffers keep their size.
void set_trace_capacity(std::size_t events);
std::size_t trace_capacity();

// Names the calling thread in trace exports (copied, bounded). Registers
// the thread's buffer as a side effect, so it may allocate — call it from
// thread setup, not from hot paths.
void set_thread_name(const char* name);

// Drops every registered buffer and re-arms lazy registration (buffers of
// live threads are re-created on their next emit). Test/bench support; do
// not call concurrently with emitting threads.
void reset_trace();

// Copies `s` into a process-lifetime pool and returns a stable pointer,
// satisfying the static-string contract for event names/args when the
// label is dynamic (e.g. an EvaluatorPool lane name). Deduplicating and
// never freed — intern registration-time labels, not per-event data.
const char* intern_label(const std::string& s);

enum class EventType : std::uint8_t {
  kSpan,     // exported as Chrome "X" (complete) events: ts + dur
  kInstant,  // "i"
  kCounter,  // "C"
};

inline constexpr int kMaxArgs = 3;

// Fixed-size POD record. Strings are borrowed static pointers (see the
// header note); numeric args are doubles, which covers every counter and
// (scheme, N, B)-style annotation the stack emits.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  EventType type = EventType::kInstant;
  std::uint8_t argc = 0;
  const char* akey[kMaxArgs] = {nullptr, nullptr, nullptr};
  double aval[kMaxArgs] = {0.0, 0.0, 0.0};
  const char* skey = nullptr;  // optional single string arg
  const char* sval = nullptr;  // static string value
};

// One numeric or static-string argument.
struct Arg {
  const char* key;
  double num = 0.0;
  const char* str = nullptr;
  constexpr Arg(const char* k, double v) : key(k), num(v) {}
  constexpr Arg(const char* k, int v) : key(k), num(v) {}
  constexpr Arg(const char* k, std::int64_t v)
      : key(k), num(static_cast<double>(v)) {}
  constexpr Arg(const char* k, std::uint64_t v)
      : key(k), num(static_cast<double>(v)) {}
  constexpr Arg(const char* k, const char* s) : key(k), str(s) {}
};

namespace detail {
extern std::atomic<bool> g_enabled;
// Slow path: stamps the event and appends it to the calling thread's ring
// (registering the buffer first if needed).
void emit(TraceEvent ev);
}  // namespace detail

// A completed span: started at `start_ns` (caller-sampled via now_ns()),
// ending now. Recorded as one event at span end.
inline void emit_span(const char* name, const char* cat,
                      std::uint64_t start_ns, std::uint64_t end_ns,
                      std::initializer_list<Arg> args = {}) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = EventType::kSpan;
  ev.ts_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  for (const Arg& a : args) {
    if (a.str != nullptr) {
      ev.skey = a.key;
      ev.sval = a.str;
    } else if (ev.argc < kMaxArgs) {
      ev.akey[ev.argc] = a.key;
      ev.aval[ev.argc] = a.num;
      ++ev.argc;
    }
  }
  detail::emit(ev);
}

inline void emit_instant(const char* name, const char* cat,
                         std::initializer_list<Arg> args = {}) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = EventType::kInstant;
  ev.ts_ns = now_ns();
  for (const Arg& a : args) {
    if (a.str != nullptr) {
      ev.skey = a.key;
      ev.sval = a.str;
    } else if (ev.argc < kMaxArgs) {
      ev.akey[ev.argc] = a.key;
      ev.aval[ev.argc] = a.num;
      ++ev.argc;
    }
  }
  detail::emit(ev);
}

// Counter sample (exported as a Chrome "C" event: a stepped time series).
inline void emit_counter(const char* name, const char* cat, double value) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.type = EventType::kCounter;
  ev.ts_ns = now_ns();
  ev.akey[0] = "value";
  ev.aval[0] = value;
  ev.argc = 1;
  detail::emit(ev);
}

// RAII span. Construction samples the gate once; a disabled scope is inert
// (no clock read, no destructor work beyond a null check). Args attached
// via arg() are recorded with the span at scope exit.
class SpanScope {
 public:
  SpanScope(const char* name, const char* cat) {
    if (detail::g_enabled.load(std::memory_order_relaxed)) {
      name_ = name;
      cat_ = cat;
      start_ = now_ns();
    }
  }
  ~SpanScope() {
    if (name_ == nullptr) return;
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.type = EventType::kSpan;
    ev.ts_ns = start_;
    const std::uint64_t end = now_ns();
    ev.dur_ns = end >= start_ ? end - start_ : 0;
    ev.argc = argc_;
    for (int i = 0; i < argc_; ++i) {
      ev.akey[i] = akey_[i];
      ev.aval[i] = aval_[i];
    }
    ev.skey = skey_;
    ev.sval = sval_;
    detail::emit(ev);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // True when the span is live (tracing was on at construction) — lets
  // callers skip arg computation entirely when disabled.
  bool active() const { return name_ != nullptr; }

  void arg(const char* key, double value) {
    if (name_ == nullptr || argc_ >= kMaxArgs) return;
    akey_[argc_] = key;
    aval_[argc_] = value;
    ++argc_;
  }
  void arg(const char* key, const char* value) {
    if (name_ == nullptr) return;
    skey_ = key;
    sval_ = value;
  }

 private:
  const char* name_ = nullptr;  // nullptr = inert scope
  const char* cat_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint8_t argc_ = 0;
  const char* akey_[kMaxArgs] = {nullptr, nullptr, nullptr};
  double aval_[kMaxArgs] = {0.0, 0.0, 0.0};
  const char* skey_ = nullptr;
  const char* sval_ = nullptr;
};

// --- snapshot (read side) -------------------------------------------------

// One thread's collected events, oldest first.
struct ThreadTrace {
  int tid = 0;
  std::string name;            // empty unless set_thread_name was called
  std::uint64_t dropped = 0;   // events overwritten by ring wrap
  std::vector<TraceEvent> events;
};

struct TraceSnapshot {
  std::vector<ThreadTrace> threads;
  std::uint64_t total_events = 0;
  std::uint64_t total_dropped = 0;
};

// Copies every registered ring (including buffers of exited threads). See
// the header note on quiescence for exactness guarantees.
TraceSnapshot snapshot_trace();

}  // namespace apm::obs
