#pragma once
// Deterministic, fast random number generation.
//
// xoshiro256** for the bulk stream, seeded through splitmix64 so that any
// 64-bit seed (including 0) expands to a good state. Satisfies
// UniformRandomBitGenerator, so it plugs into <random> distributions.
// Every stochastic component in the library takes one of these explicitly —
// no global RNG state — which is what makes the parallel tests and the
// synthetic-tree profiler reproducible.

#include <cstdint>
#include <limits>

namespace apm {

// splitmix64: used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [0, 1).
  constexpr float uniform_float() {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Derives an independent child stream (for per-thread RNGs).
  constexpr Rng split() {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace apm
