#pragma once
// Othello/Reversi on an N×N board (N even, default 8) — the third benchmark
// workload, and the one that makes heterogeneous per-slot routing real: its
// branching factor collapses and recovers over a game (unlike Gomoku's
// monotone decay), so an Othello lane's eval-arrival rate looks nothing
// like a Gomoku lane's and the per-queue batch thresholds genuinely differ.
//
// Action space: the N² board cells. Passing is handled *inside* apply()
// (auto-pass): when the mover's placement leaves the opponent without a
// legal reply but the mover still has one, the turn bounces straight back —
// so legal_actions() is never empty for a non-terminal state and
// action_count() == height()·width() matches the PolicyValueNet policy head
// exactly (NetConfig::actions() is H·W). The game is terminal when neither
// colour has a placement.
//
// Zobrist hashing stays incremental across flips: placing toggles the
// stone's key in, and every flipped disc swaps its two colour keys
// (hash ^= key(c, 0) ^ key(c, 1)), so hash() remains a pure function of
// (board, side to move) — move-order invariant by construction, which the
// from-scratch-recompute test in test_games.cpp pins. The table seed is
// Othello-specific: Gomoku(8) has the same cell count, and two games routed
// through one shared evaluation lane must never alias cache keys.

#include <cstdint>
#include <memory>

#include "games/game.hpp"
#include "games/zobrist.hpp"

namespace apm {

class Othello final : public Game {
 public:
  // size even, in [4, 16]. 8 is standard; 6 keeps tests fast.
  explicit Othello(int size = 8);

  std::unique_ptr<Game> clone() const override;

  int action_count() const override { return size_ * size_; }
  int height() const override { return size_; }
  int width() const override { return size_; }
  std::string name() const override;

  int current_player() const override { return player_; }
  bool is_terminal() const override { return terminal_; }
  int winner() const override { return winner_; }
  int move_count() const override { return moves_; }
  bool is_legal(int action) const override;
  void legal_actions(std::vector<int>& out) const override;
  void apply(int action) override;
  std::uint64_t hash() const override { return hash_; }
  // encode()'s plane 2 marks the last placed disc (a pass places nothing, so
  // the marker survives an auto-pass), so the eval-cache key extends the
  // position hash with it — same contract as Gomoku/Connect4.
  std::uint64_t eval_key() const override {
    return mix_last_move(hash_, last_move_);
  }
  void encode(float* planes) const override;
  std::string to_string() const override;

  // --- Othello-specific ---
  int size() const { return size_; }
  int last_move() const { return last_move_; }
  // Consecutive auto-passes absorbed by apply() so far (diagnostics).
  int passes() const { return passes_; }
  int cell(int row, int col) const {
    return board_[static_cast<std::size_t>(row) * size_ + col];
  }
  // Disc count for +1 / −1 (the winner is whoever holds more at the end).
  int disc_count(int colour) const;
  static int action_of(int row, int col, int size) { return row * size + col; }

  // Zobrist table seed — distinct from the Gomoku/Connect4 default so equal
  // cell counts (Othello(8) vs Gomoku(8)) can never produce colliding keys
  // in a shared cache lane.
  static constexpr std::uint64_t kZobristSeed = 0x07E110C0FFEE5EEDULL;

 private:
  // Discs flipped by `player` placing at (row, col) along one direction;
  // 0 when the ray is not bracketed.
  int flips_along(int row, int col, int dr, int dc, int player) const;
  bool any_move_for(int player) const;
  void finish_game();

  int size_;
  int player_ = 1;  // +1 (dark) moves first
  int winner_ = 0;
  int moves_ = 0;
  int passes_ = 0;
  int last_move_ = -1;
  bool terminal_ = false;
  std::uint64_t hash_ = 0;
  std::vector<std::int8_t> board_;
  std::shared_ptr<const ZobristTable> zobrist_;
};

}  // namespace apm
