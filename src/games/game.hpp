#pragma once
// Abstract two-player, zero-sum, perfect-information game environment.
//
// This is the "existing high-level libraries for simulating various
// benchmarks" interface of the paper's program template: MCTS and the
// training pipeline only ever touch this API, so adding a benchmark means
// implementing one subclass.
//
// Conventions:
//  * Players are +1 (moves first) and −1.
//  * Actions are dense integers in [0, action_count()).
//  * winner() is +1/−1 for a decided game, 0 for draw-or-ongoing.
//  * encode() writes `encode_channels() × height × width` floats from the
//    perspective of the player to move (plane 0 = own stones), which is the
//    input convention of PolicyValueNet.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace apm {

class Game {
 public:
  virtual ~Game() = default;

  virtual std::unique_ptr<Game> clone() const = 0;

  // --- static properties ---
  virtual int action_count() const = 0;
  virtual int height() const = 0;
  virtual int width() const = 0;
  virtual int encode_channels() const { return 4; }
  virtual std::string name() const = 0;

  // --- dynamic state ---
  virtual int current_player() const = 0;
  virtual bool is_terminal() const = 0;
  virtual int winner() const = 0;
  virtual int move_count() const = 0;
  virtual bool is_legal(int action) const = 0;
  virtual void legal_actions(std::vector<int>& out) const = 0;
  virtual void apply(int action) = 0;

  // Incremental Zobrist hash of the position (player-to-move included).
  // Move-order invariant: transpositions share one hash.
  virtual std::uint64_t hash() const = 0;

  // Cache key for NN evaluations: a hash of EVERYTHING encode() depends on.
  // hash() covers stones + side to move, but games whose encoding also
  // marks the last move (Connect4/Gomoku/Othello plane 2) must extend it —
  // two transpositions with different last moves encode differently and
  // may evaluate differently, so they must never share an eval-cache
  // entry. The default is hash() for games whose encoding is a pure
  // function of the position; last-move-plane games implement it as
  // mix_last_move(hash(), <last move cell>).
  virtual std::uint64_t eval_key() const { return hash(); }

  // The one shared mixing scheme for extending a position hash with the
  // last-move plane (cell < 0 = no marker yet). Keying on a single scheme
  // matters: PR 4's under-keying bug was exactly a divergence between
  // encode() inputs and the cache key, and three per-game copies would
  // invite the next one.
  static std::uint64_t mix_last_move(std::uint64_t hash, int cell) {
    if (cell < 0) return hash;
    std::uint64_t mix = static_cast<std::uint64_t>(cell) + 1;
    return hash ^ splitmix64(mix);
  }

  // NN input; see class comment for the layout contract.
  virtual void encode(float* planes) const = 0;

  virtual std::string to_string() const = 0;

  // --- derived helpers ---
  std::size_t encode_size() const {
    return static_cast<std::size_t>(encode_channels()) * height() * width();
  }

  // Terminal value from the perspective of the player to move:
  // −1 if the opponent just won, 0 for a draw. (The side to move can never
  // have already won in an alternating-move game.)
  float terminal_value() const;

  int num_legal_actions() const;
};

}  // namespace apm
