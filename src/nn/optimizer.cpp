#include "nn/optimizer.hpp"

#include "support/check.hpp"

namespace apm {

SgdOptimizer::SgdOptimizer(std::vector<Param*> params, SgdConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    APM_CHECK(p != nullptr);
    velocity_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void SgdOptimizer::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param& p = *params_[pi];
    Tensor& v = velocity_[pi];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* vel = v.data();
    const std::size_t n = p.numel();
    for (std::size_t i = 0; i < n; ++i) {
      vel[i] = cfg_.momentum * vel[i] -
               cfg_.lr * (g[i] + cfg_.weight_decay * w[i]);
      w[i] += vel[i];
    }
  }
}

}  // namespace apm
