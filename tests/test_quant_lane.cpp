// Serving-plane tests for quantized inference lanes: mixed-precision lane
// registration and telemetry in the EvaluatorPool, the match-play
// precision gate (fp32 vs int8 lanes of the same net), the MatchService's
// live per-game in-flight accounting, and mixed-precision workloads
// draining through one service.
//
// This binary runs under ThreadSanitizer in CI (alongside test_hetero and
// test_service): the int8 kernels' thread-local pack buffers and the
// lanes' queue/cache synchronization are exactly what TSan should sweep.

#include <gtest/gtest.h>

#include <memory>

#include "eval/gpu_model.hpp"
#include "eval/net_evaluator.hpp"
#include "games/gomoku.hpp"
#include "nn/quantize.hpp"
#include "serve/match_service.hpp"
#include "serve/precision_gate.hpp"

namespace apm {
namespace {

// A real fp32 net plus its int8 snapshot, each served by a NetEvaluator
// behind a CpuBackend — the two lanes the mixed-precision tests race.
struct QuantRig {
  explicit QuantRig(int board, std::uint64_t seed)
      : net(NetConfig::tiny(board), seed),
        qnet(net),
        fp32_eval(net),
        int8_eval(qnet),
        fp32_backend(fp32_eval),
        int8_backend(int8_eval) {}

  PolicyValueNet net;
  QuantizedPolicyValueNet qnet;
  NetEvaluator fp32_eval;
  NetEvaluator int8_eval;
  CpuBackend fp32_backend;
  CpuBackend int8_backend;
};

EngineConfig serial_engine(int playouts) {
  EngineConfig ec;
  ec.mcts.num_playouts = playouts;
  ec.scheme = Scheme::kSerial;
  ec.adapt = false;
  return ec;
}

TEST(EvaluatorPoolPrecision, LanesDeclareAndReportPrecision) {
  QuantRig rig(3, 77);
  EvaluatorPool pool;
  const int id_f = pool.add_model(
      {.name = "net", .backend = &rig.fp32_backend, .batch_threshold = 1});
  const int id_q = pool.add_model({.name = "net-int8",
                                   .backend = &rig.int8_backend,
                                   .batch_threshold = 1,
                                   .precision = Precision::kInt8});

  // Default is fp32; the declared precision is immutable lane telemetry.
  EXPECT_EQ(pool.precision(id_f), Precision::kFp32);
  EXPECT_EQ(pool.precision(id_q), Precision::kInt8);
  EXPECT_EQ(pool.lane_stats(id_f).precision, Precision::kFp32);
  EXPECT_EQ(pool.lane_stats(id_q).precision, Precision::kInt8);
  EXPECT_STREQ(precision_name(pool.precision(id_q)), "int8");

  // Two precisions of one logical net are two fully isolated lanes.
  EXPECT_NE(pool.find("net"), pool.find("net-int8"));
}

TEST(PrecisionGate, Int8LaneMatchesFp32AtTicTacToe) {
  const Gomoku game = make_tictactoe();
  QuantRig rig(3, 123);
  EvaluatorPool pool;
  // Threshold-1 lanes: the gate is a synchronous single producer per lane
  // (see the precision_gate header note).
  pool.add_model(
      {.name = "fp32", .backend = &rig.fp32_backend, .batch_threshold = 1});
  pool.add_model({.name = "int8",
                  .backend = &rig.int8_backend,
                  .batch_threshold = 1,
                  .precision = Precision::kInt8});

  PrecisionGateConfig cfg;
  cfg.baseline_model = "fp32";
  cfg.candidate_model = "int8";
  cfg.games = 4;
  cfg.opening_moves = 2;
  cfg.engine = serial_engine(96);
  cfg.seed = 2024;
  // 96-playout MCTS plays tic-tac-toe (near-)perfectly from any 2-ply
  // opening; color-swapped pairs cancel decided openings, so an int8 net
  // that matches its fp32 source scores ~0.5.
  cfg.max_winrate_drop = 0.3;

  const PrecisionGateReport rep = run_precision_gate(pool, game, cfg);
  EXPECT_EQ(rep.baseline_precision, Precision::kFp32);
  EXPECT_EQ(rep.candidate_precision, Precision::kInt8);
  EXPECT_EQ(rep.games,
            rep.candidate_wins + rep.candidate_losses + rep.draws);
  EXPECT_GE(rep.games, 2);
  EXPECT_TRUE(rep.pass) << "int8 score " << rep.candidate_score << " over "
                        << rep.games << " games";

  // The gate is a pure function of (nets, proto, cfg): a rerun reproduces
  // the exact report — evidence, not a coin flip.
  const PrecisionGateReport again = run_precision_gate(pool, game, cfg);
  EXPECT_EQ(again.candidate_wins, rep.candidate_wins);
  EXPECT_EQ(again.candidate_losses, rep.candidate_losses);
  EXPECT_EQ(again.draws, rep.draws);
  EXPECT_EQ(again.candidate_score, rep.candidate_score);
}

TEST(MatchServicePrecision, MixedPrecisionWorkloadsDrainAndBalance) {
  const Gomoku game = make_tictactoe();
  QuantRig rig(3, 31);
  EvaluatorPool pool;
  pool.add_model({.name = "fp32",
                  .backend = &rig.fp32_backend,
                  .batch_threshold = 2,
                  .stale_flush_us = 500.0});
  pool.add_model({.name = "int8",
                  .backend = &rig.int8_backend,
                  .batch_threshold = 2,
                  .stale_flush_us = 500.0,
                  .precision = Precision::kInt8});

  ServiceConfig sc;
  sc.workers = 2;
  ServiceWorkload wf;
  wf.proto = std::shared_ptr<const Game>(game.clone());
  wf.model = "fp32";
  wf.slots = 2;
  wf.engine = serial_engine(24);
  ServiceWorkload wq = wf;
  wq.model = "int8";

  MatchService service(sc, pool, {wf, wq});
  service.start();
  ASSERT_TRUE(service.enqueue(6));
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.games_completed, 6);
  ASSERT_EQ(stats.lanes.size(), 2u);
  for (const ServiceLaneStats& lane : stats.lanes) {
    EXPECT_EQ(lane.precision, pool.precision(lane.model_id));
    // Live in-flight accounting must balance: every seated game added its
    // (template or committed) in-flight and every retire removed exactly
    // the slot's last value — any residue here is a leak in the live
    // feedback path.
    EXPECT_EQ(lane.live_games, 0);
    EXPECT_DOUBLE_EQ(lane.live_inflight, 0.0);
  }
  // Both lanes actually served work at their declared precisions.
  EXPECT_GT(stats.lanes[0].batch.submitted, 0u);
  EXPECT_GT(stats.lanes[1].batch.submitted, 0u);
  service.stop();
}

TEST(MatchServicePrecision, LiveInflightTracksCommittedSchemes) {
  // Adaptation ON with a cost feed is not reachable through the service
  // (engines are internal), so pin the contract at the accounting level:
  // a serial template keeps scheme_inflight == 1 per live game, and the
  // sum collapses to zero once the wave retires.
  const Gomoku game = make_tictactoe();
  QuantRig rig(3, 59);
  EvaluatorPool pool;
  pool.add_model({.name = "int8",
                  .backend = &rig.int8_backend,
                  .batch_threshold = 1,
                  .stale_flush_us = 500.0,
                  .precision = Precision::kInt8});

  ServiceConfig sc;
  sc.workers = 1;
  ServiceWorkload w;
  w.proto = std::shared_ptr<const Game>(game.clone());
  w.model = "int8";
  w.slots = 1;
  w.engine = serial_engine(16);

  MatchService service(sc, pool, {w});
  service.start();
  ASSERT_TRUE(service.enqueue(2));
  service.drain();
  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.lanes.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.lanes[0].live_inflight, 0.0);
  EXPECT_EQ(stats.games_completed, 2);
  service.stop();
}

}  // namespace
}  // namespace apm
