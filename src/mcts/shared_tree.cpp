#include "mcts/shared_tree.hpp"

#include <mutex>
#include <thread>
#include <vector>

#include "mcts/selection.hpp"
#include "mcts/transposition.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace apm {

SharedTreeMcts::SharedTreeMcts(MctsConfig cfg, int workers, Evaluator& eval,
                               SearchTree* shared_tree)
    : MctsSearch(cfg, shared_tree),
      workers_(workers),
      eval_(&eval),
      rng_(cfg.seed) {
  APM_CHECK(workers >= 1);
}

SharedTreeMcts::SharedTreeMcts(MctsConfig cfg, int workers,
                               AsyncBatchEvaluator& batch,
                               SearchTree* shared_tree)
    : MctsSearch(cfg, shared_tree),
      workers_(workers),
      batch_(&batch),
      rng_(cfg.seed) {
  APM_CHECK(workers >= 1);
}

void SharedTreeMcts::evaluate_root(const Game& env) {
  InTreeOps ops(tree_, cfg_);
  Node& root = tree_.node(tree_.root());
  ExpandState expected = ExpandState::kLeaf;
  const bool claimed = root.state.compare_exchange_strong(
      expected, ExpandState::kExpanding, std::memory_order_acq_rel);
  APM_CHECK(claimed);

  std::vector<float> input(env.encode_size());
  env.encode(input.data());
  EvalOutput out;
  if (batch_ != nullptr) {
    SubmitOutcome how = SubmitOutcome::kQueued;
    auto fut = batch_->submit_future(input.data(), batch_tag(), env.eval_key(),
                                     &how);
    // Sole producer: don't wait for a batch that can't fill. On a tagged
    // multi-producer queue the flush would dispatch other games' forming
    // batches; the stale timer bounds the root's wait there instead.
    if (batch_tag() < 0 && how == SubmitOutcome::kQueued) batch_->flush();
    out = fut.get();
    // Root dedupe is deliberately NOT counted into SearchMetrics:
    // eval_requests counts leaf evaluations only, and cache_hits must stay
    // a subset of it so hit-rate ratios are well-formed. Root hits still
    // show in the queue- and cache-level counters.
  } else {
    eval_->evaluate(input.data(), out);
  }
  ops.note_eval(tree_.root(), env.eval_key(), out.value);
  ops.expand(tree_.root(), env, out.policy, cfg_.root_noise ? &rng_ : nullptr);
}

void SharedTreeMcts::worker_loop(const Game& env,
                                 std::atomic<int>& playout_counter,
                                 WorkerStats& stats) {
  InTreeOps ops(tree_, cfg_);
  std::vector<float> input(env.encode_size());
  EvalOutput out;
  TtView tt_scratch;  // per-worker: probe results never cross threads
  const bool coarse = cfg_.lock_mode == LockMode::kCoarse;

  for (;;) {
    const int ticket = playout_counter.fetch_add(1, std::memory_order_acq_rel);
    if (ticket >= cfg_.num_playouts) return;

    Timer phase;
    std::unique_ptr<Game> game;
    DescendOutcome outcome;
    if (coarse) {
      // Never wait on a collision while holding the coarse lock: the
      // expander needs that same lock to publish its edges. Back out,
      // release, retry.
      for (;;) {
        game = env.clone();
        {
          std::lock_guard guard(tree_.coarse_lock());
          outcome = ops.descend(*game, CollisionPolicy::kBackout);
        }
        if (outcome.status != DescendStatus::kCollision) break;
        std::this_thread::yield();
      }
    } else {
      game = env.clone();
      outcome = ops.descend(*game, CollisionPolicy::kWait);
    }
    stats.select_s += phase.elapsed_seconds();
    stats.max_depth = std::max(stats.max_depth, outcome.depth);
    stats.sum_depth += outcome.depth;

    if (outcome.status == DescendStatus::kTerminal) {
      ++stats.terminals;
      phase.reset();
      if (coarse) {
        std::lock_guard guard(tree_.coarse_lock());
        ops.backup(outcome.node, game->terminal_value());
      } else {
        ops.backup(outcome.node, game->terminal_value());
      }
      stats.backup_s += phase.elapsed_seconds();
      continue;
    }

    const std::uint64_t key = game->eval_key();
    bool announced = false;
    if (tt_ != nullptr) {
      phase.reset();
      ++stats.tt_probes;
      float tt_value = 0.0f;
      TtProbeResult tr;
      if (coarse) {
        // TT ops serialise on their own bucket locks; only the tree graft
        // itself needs the coarse lock (lock order coarse→bucket is never
        // reversed anywhere, so no cycle).
        tr = tt_->probe(key, tt_scratch);
        if (tr == TtProbeResult::kHit) {
          {
            std::lock_guard guard(tree_.coarse_lock());
            ops.expand_from_tt(outcome.node, key, tt_scratch,
                               tt_->config().graft,
                               tt_->config().stats_blend);
          }
          tt_value = tt_scratch.value;
          // Mirrors the tt_probe_and_graft instant (the per-node path) so
          // coarse-mode grafts are visible on the timeline too.
          obs::emit_instant("tt_graft", "mcts",
                            {{"edges", tt_scratch.edges.size()},
                             {"depth", tt_scratch.depth},
                             {"visits", tt_scratch.visits},
                             {"lane", tt_->label()}});
        } else {
          announced = tt_->announce(key);
        }
      } else {
        tr = tt_probe_and_graft(tt_, ops, outcome.node, key, tt_scratch,
                                &tt_value, &announced);
      }
      if (tr == TtProbeResult::kHit) {
        ++stats.tt_grafts;
        stats.expand_s += phase.elapsed_seconds();
        phase.reset();
        if (coarse) {
          std::lock_guard guard(tree_.coarse_lock());
          ops.backup(outcome.node, tt_value);
        } else {
          ops.backup(outcome.node, tt_value);
        }
        stats.backup_s += phase.elapsed_seconds();
        continue;
      }
      if (tr == TtProbeResult::kPending) ++stats.tt_pending;
      stats.expand_s += phase.elapsed_seconds();
    }

    phase.reset();
    game->encode(input.data());
    if (batch_ != nullptr) {
      SubmitOutcome how = SubmitOutcome::kQueued;
      out = batch_->submit_future(input.data(), batch_tag(), key, &how).get();
      if (how == SubmitOutcome::kCacheHit) ++stats.cache_hits;
      if (how == SubmitOutcome::kCoalesced) ++stats.coalesced;
    } else {
      eval_->evaluate(input.data(), out);
    }
    ++stats.evals;
    stats.eval_s += phase.elapsed_seconds();

    phase.reset();
    if (coarse) {
      std::lock_guard guard(tree_.coarse_lock());
      ops.note_eval(outcome.node, key, out.value);
      ops.expand(outcome.node, *game, out.policy);
      if (tt_ != nullptr) {
        tt_store_expansion(tt_, tree_, outcome.node, key, out.value,
                           outcome.depth, announced);
        ++stats.tt_stores;
      }
      stats.expand_s += phase.elapsed_seconds();
      phase.reset();
      ops.backup(outcome.node, out.value);
    } else {
      ops.note_eval(outcome.node, key, out.value);
      ops.expand(outcome.node, *game, out.policy);
      if (tt_ != nullptr) {
        // Edges are immutable once published; the store reads them without
        // tree locks and serialises on its bucket lock.
        tt_store_expansion(tt_, tree_, outcome.node, key, out.value,
                           outcome.depth, announced);
        ++stats.tt_stores;
      }
      stats.expand_s += phase.elapsed_seconds();
      phase.reset();
      ops.backup(outcome.node, out.value);
    }
    ++stats.expansions;
    stats.backup_s += phase.elapsed_seconds();
  }
}

SearchResult SharedTreeMcts::search(const Game& env) {
  SearchMetrics metrics;
  const bool reuse = begin_move(metrics);
  metrics.workers = workers_;
  Timer move_timer;

  BatchQueueStats batch_before;
  if (batch_ != nullptr) batch_before = batch_->stats();

  if (!reuse) {
    evaluate_root(env);
  } else if (cfg_.root_noise) {
    InTreeOps ops(tree_, cfg_);
    ops.mix_root_noise(rng_);
  }

  std::atomic<int> playout_counter{0};
  std::vector<WorkerStats> stats(static_cast<std::size_t>(workers_));
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
      threads.emplace_back([this, &env, &playout_counter, &stats, w] {
        worker_loop(env, playout_counter, stats[w]);
      });
    }
  }  // joins

  for (const WorkerStats& s : stats) {
    metrics.select_seconds += s.select_s;
    metrics.eval_seconds += s.eval_s;
    metrics.expand_seconds += s.expand_s;
    metrics.backup_seconds += s.backup_s;
    metrics.max_depth = std::max(metrics.max_depth, s.max_depth);
    metrics.sum_depth += s.sum_depth;
    metrics.terminal_rollouts += s.terminals;
    metrics.eval_requests += s.evals;
    metrics.cache_hits += s.cache_hits;
    metrics.coalesced_evals += s.coalesced;
    metrics.expansions += s.expansions;
    metrics.tt_probes += s.tt_probes;
    metrics.tt_grafts += s.tt_grafts;
    metrics.tt_pending += s.tt_pending;
    metrics.tt_stores += s.tt_stores;
  }
  if (batch_ != nullptr) {
    // Sole producer: settle the queue before reading the delta. On a
    // tagged multi-producer queue drain() would stall on other games'
    // traffic — and is unnecessary, since our workers block on their own
    // futures, so nothing of ours is still in flight here.
    if (batch_tag() < 0) batch_->drain();
    finish_batch_metrics(*batch_, batch_before, metrics, reuse);
  }

  metrics.playouts = cfg_.num_playouts;
  metrics.move_seconds = move_timer.elapsed_seconds();
  metrics.nodes = tree_.node_count();
  metrics.edges = tree_.edge_count();

  SearchResult result = extract_result(tree_, env.action_count());
  result.metrics = metrics;
  return result;
}

}  // namespace apm
