#include "nn/linear.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace apm {

Linear::Linear(std::string name, int in_features, int out_features)
    : in_(in_features), out_(out_features) {
  w_.init_shape(name + ".w", {out_features, in_features});
  b_.init_shape(name + ".b", {out_features});
}

void Linear::init(Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_ + out_));
  w_.value.fill_uniform(rng, -bound, bound);
  b_.value.zero();
}

void Linear::forward(const Tensor& x, Tensor& y, bool fuse_relu) const {
  APM_CHECK(x.rank() == 2 && x.dim(1) == in_);
  const int batch = x.dim(0);
  y.resize({batch, out_});
  // y[B, Out] = x[B, In] * W[Out, In]^T + b, fused epilogue.
  gemm_abt_bias_relu(x.data(), w_.value.data(), b_.value.data(), y.data(),
                     batch, out_, in_, fuse_relu);
}

void Linear::backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  APM_CHECK(dy.rank() == 2 && dy.dim(1) == out_);
  const int batch = dy.dim(0);
  APM_CHECK(x.dim(0) == batch && x.dim(1) == in_);
  // gW[Out, In] += dy[B, Out]^T * x[B, In]
  gemm_atb(dy.data(), x.data(), w_.grad.data(), out_, in_, batch,
           /*accumulate=*/true);
  for (int i = 0; i < batch; ++i) {
    const float* row = dy.data() + static_cast<std::size_t>(i) * out_;
    for (int o = 0; o < out_; ++o) b_.grad[o] += row[o];
  }
  dx.resize({batch, in_});
  // dx[B, In] = dy[B, Out] * W[Out, In]
  gemm(dy.data(), w_.value.data(), dx.data(), batch, in_, out_,
       /*accumulate=*/false);
}

}  // namespace apm
