#include "obs/registry.hpp"

#include <cstdio>
#include <sstream>

namespace apm::obs {
namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void render_histogram_line(std::ostringstream& out, const std::string& name,
                           const HistogramSnapshot& snap) {
  // Nanosecond-named histograms read better in µs; everything else is
  // rendered raw.
  const bool ns = ends_with(name, "_ns");
  out << "histogram " << name << ' '
      << describe_histogram(snap, ns ? 1e-3 : 1.0, ns ? "us" : "raw") << '\n';
}

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
// names ("service.move_latency_ns") map dots (and anything else) to '_'.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

void render_prom_histogram(std::ostringstream& out, const std::string& name,
                           const HistogramSnapshot& snap) {
  const std::string p = prom_name(name);
  out << "# TYPE " << p << " histogram\n";
  // Cumulative series over occupied buckets only (512 le-lines per
  // histogram would swamp the page; Prometheus semantics only need the
  // cumulative count at each emitted bound). The bound of bucket i is its
  // largest contained value: lower + width - 1.
  std::uint64_t cum = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    if (snap.buckets[i] == 0) continue;
    cum += snap.buckets[i];
    const std::uint64_t le = hist_bucket_lower(i) + hist_bucket_width(i) - 1;
    out << p << "_bucket{le=\"" << le << "\"} " << cum << '\n';
  }
  out << p << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
  out << p << "_sum " << snap.sum << '\n';
  out << p << "_count " << snap.count << '\n';
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();  // immortal
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void MetricsRegistry::set_histogram(const std::string& name,
                                    const HistogramSnapshot& snap) {
  std::lock_guard lock(mu_);
  published_[name] = snap;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  // Published snapshots win a name collision: they are the layer's own
  // merged view, which subsumes any same-named live histogram.
  for (const auto& [name, snap] : published_) out.histograms[name] = snap;
  return out;
}

std::string MetricsRegistry::render_text(TextFormat fmt) const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  if (fmt == TextFormat::kHuman) {
    for (const auto& [name, c] : counters_) {
      out << "counter " << name << ' ' << c->value() << '\n';
    }
    for (const auto& [name, g] : gauges_) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", g->value());
      out << "gauge " << name << ' ' << buf << '\n';
    }
    for (const auto& [name, h] : histograms_) {
      render_histogram_line(out, name, h->snapshot());
    }
    for (const auto& [name, snap] : published_) {
      render_histogram_line(out, name, snap);
    }
    return out.str();
  }
  for (const auto& [name, c] : counters_) {
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " counter\n" << p << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", g->value());
    const std::string p = prom_name(name);
    out << "# TYPE " << p << " gauge\n" << p << ' ' << buf << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    if (published_.count(name) != 0) continue;  // published copy wins below
    render_prom_histogram(out, name, h->snapshot());
  }
  for (const auto& [name, snap] : published_) {
    render_prom_histogram(out, name, snap);
  }
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->set(0);
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) h->reset();
  published_.clear();
}

}  // namespace apm::obs
