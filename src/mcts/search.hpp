#pragma once
// Abstract move-level search interface implemented by every scheme.
//
// One search() call performs the paper's "tree-based search stage" for a
// single move: `num_playouts` rollouts (Node Selection → Expansion →
// Evaluation → Backup) from the given position, returning the normalised
// root visit counts ("action prior", Algorithms 2/3) plus per-phase
// metrics for the profiler and the benches.
//
// Tree ownership: every scheme runs over a SearchTree arena. Standalone
// construction owns a private arena (the historical behaviour — each
// search() resets it); the SearchEngine instead passes one long-lived
// shared arena to whichever driver is currently active, so the tree — and
// the subtree kept by SearchTree::advance_root() — survives across moves
// AND across runtime scheme switches. A driver only reuses the prepared
// tree when the owner arms set_reuse_next(); a plain search() call still
// starts from scratch, so direct users are unaffected.

#include <memory>

#include "games/game.hpp"
#include "mcts/config.hpp"
#include "mcts/transposition.hpp"
#include "mcts/tree.hpp"

namespace apm {

class MctsSearch {
 public:
  virtual ~MctsSearch() = default;

  // Runs a full move's worth of playouts starting from `env` (which is not
  // modified). Not re-entrant: one search() at a time per instance.
  virtual SearchResult search(const Game& env) = 0;

  virtual Scheme scheme() const = 0;
  virtual int workers() const = 0;

  const MctsConfig& config() const { return cfg_; }
  MctsConfig& mutable_config() { return cfg_; }

  SearchTree& tree() { return tree_; }

  // Arms cross-move tree reuse for the next search() only: the driver skips
  // the arena reset and the root evaluation, continuing from the subtree
  // the caller prepared via SearchTree::advance_root(). Ignored by schemes
  // that cannot reuse a tree (root-parallel grows fresh per-worker trees).
  void set_reuse_next(bool reuse) { reuse_next_ = reuse; }

  // Submitter tag passed with every AsyncBatchEvaluator request, so a
  // shared multi-producer queue (MatchService) can attribute batch
  // occupancy to this search's game slot. Negative = untagged (default).
  void set_batch_tag(int tag) { batch_tag_ = tag; }
  int batch_tag() const { return batch_tag_; }

  // Attaches a caller-owned transposition table (nullptr detaches). The
  // TT-aware drivers (Serial/SharedTree/LocalTree) probe it before every
  // leaf evaluation and store every fresh expansion; other schemes ignore
  // it. The owner manages generations/clearing: for a private table
  // (shared = false) the search keeps the generation in lockstep with
  // SearchTree::epoch(); for a lane-shared table (shared = true, see
  // SearchResources::tt_shared) it bumps the generation monotonically
  // instead — a shared clock must never rewind to one engine's epoch.
  void set_transposition(TranspositionTable* tt, bool shared = false) {
    tt_ = tt;
    tt_shared_ = shared;
  }
  TranspositionTable* transposition() const { return tt_; }
  bool transposition_shared() const { return tt_shared_; }

 protected:
  explicit MctsSearch(MctsConfig cfg, SearchTree* shared_tree = nullptr)
      : cfg_(cfg),
        owned_tree_(shared_tree ? nullptr : std::make_unique<SearchTree>()),
        tree_(shared_tree ? *shared_tree : *owned_tree_) {}

  // Consumes the reuse flag; true only when the prepared root is actually
  // expanded (otherwise the search must evaluate it from scratch anyway).
  bool take_reuse() {
    const bool armed = reuse_next_;
    reuse_next_ = false;
    return armed && tree_.node(tree_.root()).state.load(
                        std::memory_order_acquire) == ExpandState::kExpanded;
  }

  // Shared search() prologue: resets the arena unless reuse was armed, and
  // records the carried-over subtree in the metrics. Returns whether the
  // root evaluation can be skipped.
  bool begin_move(SearchMetrics& metrics) {
    const bool reuse = take_reuse();
    if (!reuse) {
      tree_.reset();
      // reset() bumps the arena epoch exactly like advance_root()
      // compaction does; keep the TT's replacement clock in lockstep so
      // pre-reset memos age instead of reading as current. A lane-shared
      // table ticks forward instead: its clock belongs to every engine on
      // the lane, and overwriting it with this tree's (small, private)
      // epoch would rewind the aging of other games' live entries.
      if (tt_ != nullptr) {
        if (tt_shared_) {
          tt_->bump_generation();
        } else {
          tt_->set_generation(tree_.epoch());
        }
      }
    }
    metrics.reused_nodes = reuse ? tree_.node_count() : 0;
    metrics.reused_visits = reuse ? tree_.root_visit_total() : 0;
    return reuse;
  }

  // Shared epilogue for drivers running over an AsyncBatchEvaluator: fills
  // metrics.batch with this move's global-queue delta when this driver is
  // the sole producer (untagged), or with just its own submission count
  // when tagged on a shared multi-producer queue — there the global
  // counters mix in other games' traffic, and ServiceStats attributes
  // occupancy via the tags instead. `before` is the stats snapshot taken
  // at the top of the move; `reuse` credits the skipped root evaluation.
  // Cache hits and coalesced waiters never took a slot, so they are
  // excluded — batch.submitted stays the unique-position count the fill
  // histogram is built from, and a coalesced request is not double-counted
  // against the queue. The root term is approximate by one: root dedupe is
  // not tracked in SearchMetrics (cache_hits counts leaves only), so a
  // deduped root still contributes its +1 here.
  void finish_batch_metrics(const AsyncBatchEvaluator& batch,
                            const BatchQueueStats& before,
                            SearchMetrics& metrics, bool reuse) const {
    if (batch_tag() < 0) {
      metrics.batch = stats_delta(batch.stats(), before);
    } else {
      const std::size_t requests = metrics.eval_requests + (reuse ? 0 : 1);
      const std::size_t deduped = metrics.cache_hits + metrics.coalesced_evals;
      metrics.batch.submitted = requests > deduped ? requests - deduped : 0;
      metrics.batch.cache_hits = metrics.cache_hits;
      metrics.batch.coalesced = metrics.coalesced_evals;
    }
  }

  MctsConfig cfg_;
  std::unique_ptr<SearchTree> owned_tree_;
  SearchTree& tree_;
  TranspositionTable* tt_ = nullptr;
  bool tt_shared_ = false;

 private:
  bool reuse_next_ = false;
  int batch_tag_ = -1;
};

}  // namespace apm
