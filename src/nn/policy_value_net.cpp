#include "nn/policy_value_net.hpp"

#include <cmath>
#include <cstring>

#include "tensor/ops.hpp"

namespace apm {
namespace {

// Reinterprets a [B, C, H, W] activation as [B, C*H*W]. Row-major storage
// makes the flatten a pure shape change — no copy on the predict hot path.
void flatten_view(Tensor& x) {
  const int batch = x.dim(0);
  const int features = static_cast<int>(x.numel()) / batch;
  x.reshape({batch, features});
}

}  // namespace

PolicyValueNet::PolicyValueNet(const NetConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      conv1_("conv1", cfg.in_channels, cfg.trunk1, 3),
      conv2_("conv2", cfg.trunk1, cfg.trunk2, 3),
      conv3_("conv3", cfg.trunk2, cfg.trunk3, 3),
      conv_p_("conv_p", cfg.trunk3, cfg.policy_channels, 1),
      conv_v_("conv_v", cfg.trunk3, cfg.value_channels, 1),
      fc_p_("fc_p", cfg.policy_channels * cfg.height * cfg.width,
            cfg.actions()),
      fc_v1_("fc_v1", cfg.value_channels * cfg.height * cfg.width,
             cfg.value_hidden),
      fc_v2_("fc_v2", cfg.value_hidden, 1) {
  Rng rng(seed);
  conv1_.init(rng);
  conv2_.init(rng);
  conv3_.init(rng);
  conv_p_.init(rng);
  conv_v_.init(rng);
  fc_p_.init(rng);
  fc_v1_.init(rng);
  fc_v2_.init(rng);
}

void PolicyValueNet::forward(const Tensor& x, Activations& a, bool train,
                             ThreadPool* pool) const {
  APM_CHECK(x.rank() == 4 && x.dim(1) == cfg_.in_channels &&
            x.dim(2) == cfg_.height && x.dim(3) == cfg_.width);
  const int batch = x.dim(0);

  if (!train) {
    // Inference: ReLU fused into each conv/linear GEMM epilogue, so each
    // layer makes one pass over its output and the pre-activation tensors
    // are never materialised.
    conv1_.forward(x, a.t1r, a.conv_ws, nullptr, /*fuse_relu=*/true, pool);
    conv2_.forward(a.t1r, a.t2r, a.conv_ws, nullptr, true, pool);
    conv3_.forward(a.t2r, a.t3r, a.conv_ws, nullptr, true, pool);

    conv_p_.forward(a.t3r, a.p0r, a.conv_ws, nullptr, true, pool);
    flatten_view(a.p0r);
    fc_p_.forward(a.p0r, a.p_logits);
    // p_logp is left untouched: predict() softmaxes the logits directly,
    // and only the training loss consumes log-probabilities.

    conv_v_.forward(a.t3r, a.v0r, a.conv_ws, nullptr, true, pool);
    flatten_view(a.v0r);
    fc_v1_.forward(a.v0r, a.v1r, /*fuse_relu=*/true);
    fc_v2_.forward(a.v1r, a.v2);
    a.value.resize({batch});
    tanh_forward(a.v2.data(), a.value.data(), a.value.numel());
    return;
  }

  // Training: keep pre-activations and col caches for backward.
  conv1_.forward(x, a.t1, a.conv_ws, &a.col1, false, pool);
  a.t1r.resize(a.t1.shape());
  relu_forward(a.t1.data(), a.t1r.data(), a.t1.numel());

  conv2_.forward(a.t1r, a.t2, a.conv_ws, &a.col2, false, pool);
  a.t2r.resize(a.t2.shape());
  relu_forward(a.t2.data(), a.t2r.data(), a.t2.numel());

  conv3_.forward(a.t2r, a.t3, a.conv_ws, &a.col3, false, pool);
  a.t3r.resize(a.t3.shape());
  relu_forward(a.t3.data(), a.t3r.data(), a.t3.numel());

  // Policy head.
  conv_p_.forward(a.t3r, a.p0, a.conv_ws, &a.colp, false, pool);
  a.p0r.resize(a.p0.shape());
  relu_forward(a.p0.data(), a.p0r.data(), a.p0.numel());
  flatten_view(a.p0r);
  fc_p_.forward(a.p0r, a.p_logits);
  a.p_logp.resize({batch, cfg_.actions()});
  log_softmax_rows(a.p_logits.data(), a.p_logp.data(), batch, cfg_.actions());

  // Value head.
  conv_v_.forward(a.t3r, a.v0, a.conv_ws, &a.colv, false, pool);
  a.v0r.resize(a.v0.shape());
  relu_forward(a.v0.data(), a.v0r.data(), a.v0.numel());
  flatten_view(a.v0r);
  fc_v1_.forward(a.v0r, a.v1);
  a.v1r.resize(a.v1.shape());
  relu_forward(a.v1.data(), a.v1r.data(), a.v1.numel());
  fc_v2_.forward(a.v1r, a.v2);
  a.value.resize({batch});
  tanh_forward(a.v2.data(), a.value.data(), a.value.numel());
}

void PolicyValueNet::predict(const Tensor& x, Activations& acts,
                             Tensor& policy, Tensor& value,
                             ThreadPool* pool) const {
  forward(x, acts, /*train=*/false, pool);
  const int batch = x.dim(0);
  policy.resize({batch, cfg_.actions()});
  softmax_rows(acts.p_logits.data(), policy.data(), batch, cfg_.actions());
  value.resize({batch});
  std::memcpy(value.data(), acts.value.data(), batch * sizeof(float));
}

LossParts PolicyValueNet::train_step(const Tensor& x, const Tensor& target_pi,
                                     const Tensor& target_z,
                                     Activations& a) {
  const int batch = x.dim(0);
  const int actions = cfg_.actions();
  APM_CHECK(target_pi.rank() == 2 && target_pi.dim(0) == batch &&
            target_pi.dim(1) == actions);
  APM_CHECK(target_z.rank() == 1 && target_z.dim(0) == batch);

  forward(x, a, /*train=*/true);

  LossParts loss;
  const float inv_b = 1.0f / static_cast<float>(batch);

  // --- loss + output gradients -------------------------------------------
  // d(policy)/d(logits) for cross-entropy over log-softmax: (softmax − π)/B.
  Tensor& dlogits = a.dlogits;
  dlogits.resize({batch, actions});
  for (int i = 0; i < batch; ++i) {
    const float* logp = a.p_logp.data() + static_cast<std::size_t>(i) * actions;
    const float* pi = target_pi.data() + static_cast<std::size_t>(i) * actions;
    float* drow = dlogits.data() + static_cast<std::size_t>(i) * actions;
    float ce = 0.0f, ent = 0.0f;
    for (int c = 0; c < actions; ++c) {
      const float p = std::exp(logp[c]);
      ce -= pi[c] * logp[c];
      ent -= p * logp[c];
      drow[c] = (p - pi[c]) * inv_b;
    }
    loss.policy_loss += ce * inv_b;
    loss.entropy += ent * inv_b;

    const float v = a.value[i];
    const float diff = v - target_z[i];
    loss.value_loss += diff * diff * inv_b;
  }
  loss.total = loss.value_loss + loss.policy_loss;

  // --- value-head backward -------------------------------------------------
  // dL/dv = 2(v − z)/B; through tanh: dL/d(v2) = dL/dv · (1 − v²).
  Tensor& dv2 = a.dv2;
  dv2.resize({batch, 1});
  for (int i = 0; i < batch; ++i) {
    const float v = a.value[i];
    dv2[i] = 2.0f * (v - target_z[i]) * inv_b * (1.0f - v * v);
  }
  Tensor& dv1r = a.dv1r;
  fc_v2_.backward(a.v1r, dv2, dv1r);
  Tensor& dv1 = a.dv1;
  dv1.resize(a.v1.shape());
  relu_backward(a.v1.data(), dv1r.data(), dv1.data(), a.v1.numel(),
                /*accumulate=*/false);
  // a.v0r is the [B, Cv·H·W] flat view of the conv output; the gradient
  // comes out flat and is un-flattened to [B, Cv, H, W] by a reshape — no
  // copy either way.
  Tensor& dv0r = a.dv0r;
  fc_v1_.backward(a.v0r, dv1, dv0r);
  dv0r.reshape(a.v0.shape());
  Tensor& dv0 = a.dv0;
  dv0.resize(a.v0.shape());
  relu_backward(a.v0.data(), dv0r.data(), dv0.data(), a.v0.numel(),
                /*accumulate=*/false);
  Tensor& dt3_v = a.dt3_v;
  conv_v_.backward(dv0, a.colv, dt3_v, a.dcol);

  // --- policy-head backward ------------------------------------------------
  Tensor& dp0r = a.dp0r;
  fc_p_.backward(a.p0r, dlogits, dp0r);
  dp0r.reshape(a.p0.shape());
  Tensor& dp0 = a.dp0;
  dp0.resize(a.p0.shape());
  relu_backward(a.p0.data(), dp0r.data(), dp0.data(), a.p0.numel(),
                /*accumulate=*/false);
  Tensor& dt3_p = a.dt3_p;
  conv_p_.backward(dp0, a.colp, dt3_p, a.dcol);

  // --- trunk backward --------------------------------------------------------
  // dt3r = dt3_v + dt3_p, then back through ReLU and the trunk convs.
  Tensor& dt3 = a.dt3;
  dt3.resize(a.t3.shape());
  for (std::size_t i = 0; i < dt3.numel(); ++i)
    dt3[i] = dt3_v[i] + dt3_p[i];
  Tensor& dt3_pre = a.dt3_pre;
  dt3_pre.resize(a.t3.shape());
  relu_backward(a.t3.data(), dt3.data(), dt3_pre.data(), a.t3.numel(),
                /*accumulate=*/false);
  Tensor& dt2r = a.dt2r;
  conv3_.backward(dt3_pre, a.col3, dt2r, a.dcol);
  Tensor& dt2_pre = a.dt2_pre;
  dt2_pre.resize(a.t2.shape());
  relu_backward(a.t2.data(), dt2r.data(), dt2_pre.data(), a.t2.numel(),
                /*accumulate=*/false);
  Tensor& dt1r = a.dt1r;
  conv2_.backward(dt2_pre, a.col2, dt1r, a.dcol);
  Tensor& dt1_pre = a.dt1_pre;
  dt1_pre.resize(a.t1.shape());
  relu_backward(a.t1.data(), dt1r.data(), dt1_pre.data(), a.t1.numel(),
                /*accumulate=*/false);
  conv1_.backward(dt1_pre, a.col1, a.dx, a.dcol);

  return loss;
}

std::vector<Param*> PolicyValueNet::params() {
  std::vector<Param*> out;
  for (Conv2d* c : {&conv1_, &conv2_, &conv3_, &conv_p_, &conv_v_})
    for (Param* p : c->params()) out.push_back(p);
  for (Linear* l : {&fc_p_, &fc_v1_, &fc_v2_})
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

std::size_t PolicyValueNet::num_parameters() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->numel();
  return n;
}

void PolicyValueNet::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

void PolicyValueNet::copy_weights_from(PolicyValueNet& other) {
  APM_CHECK(cfg_ == other.cfg_);
  auto dst = params();
  auto src = other.params();
  APM_CHECK(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) {
    APM_CHECK(dst[i]->numel() == src[i]->numel());
    std::memcpy(dst[i]->value.data(), src[i]->value.data(),
                src[i]->numel() * sizeof(float));
  }
}

}  // namespace apm
