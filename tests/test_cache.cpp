// Sharded cross-game evaluation cache + in-flight coalescing (ISSUE 4).
//
// Three layers under test:
//  * EvalCache alone — set-associative placement, full-key verification,
//    CLOCK eviction, per-shard counters, concurrent hammering;
//  * AsyncBatchEvaluator with a cache attached — cache-hit fast path,
//    in-flight coalescing (a duplicate submission rides the primary's slot),
//    drain()/shutdown with waiters attached, multi-threaded submitters;
//  * MatchService end to end — with the cache on, the same games produce
//    bitwise-identical results with strictly fewer backend evaluations
//    (the ISSUE's acceptance criterion).
//
// This file runs under ThreadSanitizer in CI: the concurrency tests are the
// race-detection surface for the shard spinlocks and the coalescing
// registry.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "eval/eval_cache.hpp"
#include "eval/gpu_model.hpp"
#include "games/connect4.hpp"
#include "serve/match_service.hpp"
#include "support/rng.hpp"

namespace apm {
namespace {

// Deterministic output for a key, so any cached result can be verified
// against what the inserter must have stored.
EvalOutput output_for(std::uint64_t key, int actions = 4) {
  EvalOutput out;
  out.policy.resize(static_cast<std::size_t>(actions));
  std::uint64_t s = key;
  for (auto& p : out.policy) {
    p = static_cast<float>(splitmix64(s) >> 40);
  }
  out.value = static_cast<float>(static_cast<std::int64_t>(splitmix64(s) % 200) -
                                 100) /
              100.0f;
  return out;
}

// Counts backend invocations/samples so tests can assert how much inference
// the cache actually saved.
class CountingBackend final : public InferenceBackend {
 public:
  explicit CountingBackend(InferenceBackend& inner) : inner_(inner) {}

  int action_count() const override { return inner_.action_count(); }
  std::size_t input_size() const override { return inner_.input_size(); }
  double compute_batch(const float* inputs, int n, EvalOutput* outs) override {
    batches_.fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(static_cast<std::size_t>(n),
                       std::memory_order_relaxed);
    return inner_.compute_batch(inputs, n, outs);
  }
  double model_batch_us(int n) const override {
    return inner_.model_batch_us(n);
  }

  std::size_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::size_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  InferenceBackend& inner_;
  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> samples_{0};
};

// --- EvalCache alone --------------------------------------------------------

TEST(EvalCache, InsertLookupRoundTripIsBitwise) {
  EvalCache cache({.capacity = 64, .shards = 4, .ways = 4});
  const EvalOutput stored = output_for(42);
  cache.insert(42, stored);

  EvalOutput got;
  ASSERT_TRUE(cache.lookup(42, got));
  EXPECT_EQ(got.policy, stored.policy);
  EXPECT_EQ(got.value, stored.value);

  EXPECT_FALSE(cache.lookup(43, got));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GE(s.capacity, 64u);
}

TEST(EvalCache, CapacityRoundsUpToSetGeometry) {
  EvalCache cache({.capacity = 100, .shards = 8, .ways = 4});
  // 8 shards × ways 4 → 4 sets/shard (ceil(100/32)=4, pow2) → 128 entries.
  EXPECT_EQ(cache.capacity(), 128u);
}

TEST(EvalCache, FullKeyVerificationNeverAliasesPlacementCollisions) {
  // One shard, 16 sets of 2 ways: keys congruent mod 16 share a set but
  // must keep distinct results (the full 64-bit key is compared).
  EvalCache cache({.capacity = 32, .shards = 1, .ways = 2});
  const std::uint64_t k1 = 5, k2 = 5 + 16, k3 = 5 + 32;
  cache.insert(k1, output_for(k1));
  cache.insert(k2, output_for(k2));
  EvalOutput got;
  ASSERT_TRUE(cache.lookup(k1, got));
  EXPECT_EQ(got.policy, output_for(k1).policy);
  ASSERT_TRUE(cache.lookup(k2, got));
  EXPECT_EQ(got.policy, output_for(k2).policy);
  // k3 maps to the same set but was never inserted: a lookup must miss, not
  // return k1's or k2's entry.
  EXPECT_FALSE(cache.lookup(k3, got));
}

TEST(EvalCache, ClockEvictsWithinTheFullSet) {
  // One shard, one set of 2 ways. Three inserts overflow the set by one:
  // exactly one eviction, and the victim is the oldest entry (both had
  // spent their reference bit by the time the sweep ran).
  EvalCache cache({.capacity = 2, .shards = 1, .ways = 2});
  cache.insert(0, output_for(0));
  cache.insert(1, output_for(1));
  cache.insert(2, output_for(2));
  EvalOutput got;
  EXPECT_FALSE(cache.lookup(0, got));
  EXPECT_TRUE(cache.lookup(1, got));
  EXPECT_TRUE(cache.lookup(2, got));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(EvalCache, ClockGivesReferencedEntriesASecondChance) {
  // One shard, one set of 4 ways. Fill, overflow once (sweeps every
  // reference bit clear, evicts slot 0, hand now points at slot 1 = key 2).
  EvalCache cache({.capacity = 4, .shards = 1, .ways = 4});
  for (std::uint64_t k = 1; k <= 5; ++k) cache.insert(k, output_for(k));
  EvalOutput got;
  ASSERT_FALSE(cache.lookup(1, got));  // evicted by the overflow
  // Reference the entry under the hand: the next eviction must skip it
  // (second chance) and take its unreferenced neighbour instead.
  ASSERT_TRUE(cache.lookup(2, got));
  cache.insert(6, output_for(6));
  EXPECT_TRUE(cache.lookup(2, got));   // survived: referenced
  EXPECT_FALSE(cache.lookup(3, got));  // victim: next unreferenced way
}

TEST(EvalCache, ClearInvalidatesEverythingButKeepsCounters) {
  EvalCache cache({.capacity = 16, .shards = 2, .ways = 2});
  cache.insert(7, output_for(7));
  cache.insert(8, output_for(8));
  cache.clear();
  EvalOutput got;
  EXPECT_FALSE(cache.lookup(7, got));
  EXPECT_FALSE(cache.lookup(8, got));
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.inserts, 2u);  // history survives the invalidation
}

TEST(EvalCache, ConcurrentMixedHammerStaysConsistent) {
  // Many threads look up / insert a small key space (forcing set conflicts
  // and evictions) while another clears periodically. Every hit must carry
  // exactly the inserter's bytes for that key — a torn or aliased entry
  // fails the comparison; TSan guards the shard locks.
  EvalCache cache({.capacity = 64, .shards = 4, .ways = 2});
  constexpr int kThreads = 4, kOps = 3000;
  constexpr std::uint64_t kKeySpace = 97;
  std::atomic<std::size_t> verified_hits{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&cache, &verified_hits, t] {
        Rng rng(1000 + static_cast<std::uint64_t>(t));
        EvalOutput got;
        for (int i = 0; i < kOps; ++i) {
          const std::uint64_t key = rng() % kKeySpace + 1;
          if (cache.lookup(key, got)) {
            const EvalOutput want = output_for(key);
            ASSERT_EQ(got.policy, want.policy);
            ASSERT_EQ(got.value, want.value);
            verified_hits.fetch_add(1, std::memory_order_relaxed);
          } else {
            cache.insert(key, output_for(key));
          }
        }
      });
    }
    threads.emplace_back([&cache] {
      for (int i = 0; i < 10; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        cache.clear();
      }
    });
  }
  EXPECT_GT(verified_hits.load(), 0u);
  const CacheStats s = cache.stats();
  EXPECT_LE(s.entries, s.capacity);
  EXPECT_EQ(s.misses, s.lookups - s.hits);
}

// --- AsyncBatchEvaluator with a cache ---------------------------------------

TEST(CachedQueue, ResidentHashCompletesWithoutASlot) {
  SyntheticEvaluator eval(5, 2);
  SimGpuBackend sim(eval, GpuTimingModel{});
  CountingBackend backend(sim);
  EvalCache cache({.capacity = 64, .shards = 2, .ways = 2});
  AsyncBatchEvaluator queue(backend, /*threshold=*/2, /*streams=*/1,
                            /*stale_flush_us=*/500.0);
  queue.set_cache(&cache);

  const float input[2] = {1, 2};
  SubmitOutcome how = SubmitOutcome::kQueued;
  auto first = queue.submit_future(input, -1, /*hash=*/99, &how);
  EXPECT_EQ(how, SubmitOutcome::kQueued);
  queue.drain();
  const EvalOutput a = first.get();

  auto second = queue.submit_future(input, -1, 99, &how);
  EXPECT_EQ(how, SubmitOutcome::kCacheHit);
  const EvalOutput b = second.get();  // ready immediately, no backend work
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(backend.samples(), 1u);

  const BatchQueueStats s = queue.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.coalesced, 0u);
}

TEST(CachedQueue, DuplicateInFlightCoalescesOntoOneSlot) {
  SyntheticEvaluator eval(5, 2);
  SimGpuBackend sim(eval, GpuTimingModel{});
  CountingBackend backend(sim);
  EvalCache cache({.capacity = 64, .shards = 2, .ways = 2});
  AsyncBatchEvaluator queue(backend, /*threshold=*/8, /*streams=*/1,
                            /*stale_flush_us=*/1e5);
  queue.set_cache(&cache);

  const float input[2] = {3, 4};
  SubmitOutcome how1, how2, how3;
  auto f1 = queue.submit_future(input, -1, 7, &how1);
  auto f2 = queue.submit_future(input, -1, 7, &how2);
  auto f3 = queue.submit_future(input, -1, 7, &how3);
  EXPECT_EQ(how1, SubmitOutcome::kQueued);
  EXPECT_EQ(how2, SubmitOutcome::kCoalesced);
  EXPECT_EQ(how3, SubmitOutcome::kCoalesced);

  queue.flush();
  const EvalOutput a = f1.get(), b = f2.get(), c = f3.get();
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.policy, c.policy);
  EXPECT_EQ(backend.samples(), 1u);  // one backend eval served all three

  const BatchQueueStats s = queue.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.coalesced, 2u);
  EXPECT_EQ(s.batches, 1u);
  // Satellite: waiters must not be double-counted in the fill histogram —
  // the dispatched batch holds ONE unique position, not three requests.
  ASSERT_GT(s.fill_histogram.size(), 1u);
  EXPECT_EQ(s.fill_histogram[1], 1u);
  EXPECT_EQ(s.max_batch, 1u);
  EXPECT_EQ(s.mean_batch, 1.0);

  // The completion populated the cache: a fourth request is a plain hit.
  SubmitOutcome how4;
  auto f4 = queue.submit_future(input, -1, 7, &how4);
  EXPECT_EQ(how4, SubmitOutcome::kCacheHit);
  EXPECT_EQ(f4.get().policy, a.policy);
}

TEST(CachedQueue, DrainWakesWaitersAttachedToDispatchedRequest) {
  // Satellite: drain() must flush a forming batch that carries coalesced
  // waiters and not return before those waiters' callbacks have run. The
  // stale timer is set far beyond the test so only drain() can dispatch.
  SyntheticEvaluator eval(5, 2);
  SimGpuBackend sim(eval, GpuTimingModel{});
  CountingBackend backend(sim);
  EvalCache cache({.capacity = 64, .shards = 2, .ways = 2});
  AsyncBatchEvaluator queue(backend, /*threshold=*/64, /*streams=*/2,
                            /*stale_flush_us=*/1e5);
  queue.set_cache(&cache);

  std::atomic<int> done{0};
  const float input[2] = {5, 6};
  for (int i = 0; i < 3; ++i) {
    queue.submit(
        input, [&done](EvalOutput) { done.fetch_add(1); }, -1, /*hash=*/11);
  }
  queue.submit(
      input, [&done](EvalOutput) { done.fetch_add(1); }, -1, /*hash=*/12);
  EXPECT_EQ(done.load(), 0);  // nothing dispatched yet (threshold 64)
  queue.drain();
  EXPECT_EQ(done.load(), 4);
  const BatchQueueStats s = queue.stats();
  EXPECT_EQ(s.submitted, 2u);  // two unique positions
  EXPECT_EQ(s.coalesced, 2u);
}

TEST(CachedQueue, DestructorDrainsWithWaitersAttached) {
  std::atomic<int> done{0};
  {
    SyntheticEvaluator eval(5, 2);
    SimGpuBackend sim(eval, GpuTimingModel{});
    // The cache is constructed before the queue: the queue's destructor
    // drains (completing the waiter below), which inserts into the cache —
    // the cache must outlive it.
    EvalCache cache({.capacity = 32, .shards = 1, .ways = 2});
    AsyncBatchEvaluator queue(sim, /*threshold=*/32, /*streams=*/1,
                              /*stale_flush_us=*/1e5);
    queue.set_cache(&cache);
    const float input[2] = {7, 8};
    queue.submit(
        input, [&done](EvalOutput) { done.fetch_add(1); }, -1, 21);
    queue.submit(
        input, [&done](EvalOutput) { done.fetch_add(1); }, -1, 21);
    // ~AsyncBatchEvaluator runs drain() — a stop with a waiter attached.
  }
  EXPECT_EQ(done.load(), 2);
}

TEST(CachedQueue, ConcurrentSubmittersGetExactResults) {
  // The TSan centrepiece: several threads hammer a small hash space through
  // one cached queue (hits, coalesces, evictions and plain batches all
  // interleave), one thread drains concurrently. Every result — cached,
  // coalesced, or fresh — must be byte-identical to the backend's output
  // for that input, and the dedupe identity must hold on the counters.
  SyntheticEvaluator eval(5, 2);
  SimGpuBackend sim(eval, GpuTimingModel{});
  CountingBackend backend(sim);
  // Tiny cache: the key space (64) overflows it, so eviction churn runs
  // concurrently with hits and coalesces.
  EvalCache cache({.capacity = 32, .shards = 4, .ways = 2});
  AsyncBatchEvaluator queue(backend, /*threshold=*/4, /*streams=*/2,
                            /*stale_flush_us=*/300.0);
  queue.set_cache(&cache);

  constexpr int kThreads = 4, kPerThread = 400;
  constexpr std::uint64_t kKeySpace = 64;
  std::atomic<int> done{0};
  std::atomic<bool> mismatch{false};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(31 + static_cast<std::uint64_t>(t));
        SyntheticEvaluator reference(5, 2);
        EvalOutput want;
        for (int i = 0; i < kPerThread; ++i) {
          const std::uint64_t key = rng() % kKeySpace + 1;
          const float input[2] = {static_cast<float>(key),
                                  static_cast<float>(key * 3)};
          reference.evaluate(input, want);
          auto fut = queue.submit_future(input, t, key);
          const EvalOutput got = fut.get();
          if (got.policy != want.policy || got.value != want.value) {
            mismatch.store(true);
          }
          done.fetch_add(1);
        }
      });
    }
    threads.emplace_back([&queue] {
      for (int i = 0; i < 20; ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
        queue.drain();
      }
    });
  }
  queue.drain();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(done.load(), kThreads * kPerThread);

  const BatchQueueStats s = queue.stats();
  // Every request was served exactly one way.
  EXPECT_EQ(s.submitted + s.cache_hits + s.coalesced,
            static_cast<std::size_t>(kThreads * kPerThread));
  // Dedupe must have engaged (64 keys, 1600 requests) and every unique
  // submission reached the backend.
  EXPECT_GT(s.cache_hits + s.coalesced, 0u);
  EXPECT_EQ(backend.samples(), s.submitted);
  EXPECT_GT(cache.stats().hits, 0u);
}

// --- MatchService end to end ------------------------------------------------

struct ServiceRun {
  std::vector<GameRecord> records;
  ServiceStats stats;
  std::size_t backend_samples = 0;
};

// Plays `games` Connect4 games on a deterministic serial-engine service
// (fixed seeds, adaptation off), optionally with an eval cache in front of
// the shared queue.
ServiceRun run_service(int games, bool cached) {
  const Connect4 game;
  SyntheticEvaluator eval(game.action_count(), game.encode_size());
  SimGpuBackend sim(eval, GpuTimingModel{});
  CountingBackend backend(sim);
  EvalCache cache({.capacity = 1 << 12, .shards = 8, .ways = 4});
  AsyncBatchEvaluator queue(backend, /*batch_threshold=*/4, /*num_streams=*/2,
                            /*stale_flush_us=*/800.0);
  if (cached) queue.set_cache(&cache);

  ServiceConfig sc;
  sc.engine.mcts.num_playouts = 24;
  sc.engine.scheme = Scheme::kSerial;
  sc.engine.adapt = false;
  sc.slots = 4;
  sc.workers = 4;
  sc.self_play.max_moves = 20;

  ServiceRun run;
  {
    MatchService service(sc, game, {.batch = &queue});
    service.enqueue(games);
    service.start();
    service.drain();
    run.stats = service.stats();
    run.records = service.take_completed();
    service.stop();
  }
  run.backend_samples = backend.samples();
  return run;
}

TEST(CachedService, SameGamesFewerEvaluations) {
  // The ISSUE acceptance criterion: at K >= 4 concurrent games with fixed
  // seeds, the cache produces a nonzero hit rate and strictly fewer backend
  // evaluations, while every game's outcome and samples stay identical —
  // exact 64-bit coalescing must not change a single move.
  const int kGames = 8;
  const ServiceRun off = run_service(kGames, /*cached=*/false);
  const ServiceRun on = run_service(kGames, /*cached=*/true);

  ASSERT_EQ(off.records.size(), static_cast<std::size_t>(kGames));
  ASSERT_EQ(on.records.size(), static_cast<std::size_t>(kGames));
  for (int g = 0; g < kGames; ++g) {
    const GameRecord& a = off.records[static_cast<std::size_t>(g)];
    const GameRecord& b = on.records[static_cast<std::size_t>(g)];
    ASSERT_EQ(a.game_id, b.game_id);
    EXPECT_EQ(a.stats.winner, b.stats.winner) << "game " << g;
    EXPECT_EQ(a.stats.moves, b.stats.moves) << "game " << g;
    ASSERT_EQ(a.samples.size(), b.samples.size()) << "game " << g;
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      EXPECT_EQ(a.samples[i].pi, b.samples[i].pi) << "game " << g;
      EXPECT_EQ(a.samples[i].z, b.samples[i].z) << "game " << g;
    }
  }

  EXPECT_GT(on.stats.cache_hits + on.stats.coalesced_evals, 0u);
  EXPECT_GT(on.stats.cache_hit_rate, 0.0);
  EXPECT_LT(on.backend_samples, off.backend_samples);
  EXPECT_GT(on.stats.cache.hits, 0u);
  // Same demand either way; the cache only changes how it is served.
  EXPECT_EQ(on.stats.eval_requests, off.stats.eval_requests);
}

TEST(CachedService, StopMidGameWithCacheDoesNotDeadlock) {
  const Connect4 game;
  SyntheticEvaluator eval(game.action_count(), game.encode_size(),
                          /*latency_us=*/50.0);
  SimGpuBackend sim(eval, GpuTimingModel{});
  EvalCache cache({.capacity = 1 << 10, .shards = 4, .ways = 4});
  AsyncBatchEvaluator queue(sim, 4, 2, /*stale_flush_us=*/800.0);
  queue.set_cache(&cache);

  ServiceConfig sc;
  sc.engine.mcts.num_playouts = 48;
  sc.engine.scheme = Scheme::kSerial;
  sc.engine.adapt = false;
  sc.slots = 4;
  sc.workers = 4;

  MatchService service(sc, game, {.batch = &queue});
  service.enqueue(64);
  service.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.stop();  // waiters may be attached mid-move: must not hang
  const ServiceStats s = service.stats();
  EXPECT_EQ(s.games_active, 0);
}

}  // namespace
}  // namespace apm
