// Ablation — related-work parallel schemes (§2.2): leaf-parallel [1] and
// root-parallel [6] against the paper's tree-parallel schemes, at a fixed
// per-move playout budget.
//
// The comparison the paper's related-work section predicts:
//  * leaf-parallel wastes its budget on duplicate evaluations of the same
//    leaf ("lack of diverse evaluation coverage") → far fewer distinct
//    tree nodes per playout, weaker tactics at the same budget;
//  * root-parallel splits the budget across independent trees that revisit
//    the same states → each tree is shallow;
//  * tree-parallel (shared/local) spends the full budget on one tree.

#include <cstdio>

#include "eval/evaluator.hpp"
#include "games/gomoku.hpp"
#include "mcts/factory.hpp"
#include "support/table.hpp"

using namespace apm;

namespace {

// TicTacToe tactic: X holds 0 and 1 of the top row, O to move must block
// at action 2 (any other O move loses to X playing 2).
Gomoku blocking_position() {
  Gomoku g = make_tictactoe();
  g.apply(0);  // X
  g.apply(3);  // O
  g.apply(1);  // X — threatens 0-1-2
  return g;
}

}  // namespace

int main() {
  std::printf("=== Ablation: leaf-/root-parallel baselines vs tree-parallel ===\n");
  const Gomoku g = blocking_position();
  const int must_block = 2;
  std::printf("position (O to move, must block at action %d):\n%s\n",
              must_block, g.to_string().c_str());

  Table table({"scheme", "N", "distinct nodes", "eval requests",
               "best action", "blocked?"});
  const int playouts = 800;
  for (Scheme scheme : {Scheme::kSerial, Scheme::kSharedTree,
                        Scheme::kLocalTree, Scheme::kLeafParallel,
                        Scheme::kRootParallel}) {
    const int workers = scheme == Scheme::kSerial ? 1 : 8;
    SyntheticEvaluator eval(g.action_count(), g.encode_size(),
                            /*latency_us=*/20.0);
    MctsConfig cfg;
    cfg.num_playouts = playouts;
    cfg.c_puct = 3.0f;
    auto search = make_search(scheme, cfg, workers, {.evaluator = &eval});
    const SearchResult r = search->search(g);
    table.add_row({to_string(scheme), std::to_string(workers),
                   std::to_string(r.metrics.nodes),
                   std::to_string(r.metrics.eval_requests),
                   std::to_string(r.best_action),
                   r.best_action == must_block ? "yes" : "NO"});
  }
  table.print("same playout budget, different parallel schemes");

  std::printf(
      "\ncheck (paper, §2.2): leaf-parallel expands far fewer distinct "
      "nodes (duplicate\nevaluations), root-parallel splits the budget "
      "across shallow trees; the\ntree-parallel schemes use the full "
      "budget on one tree and find the block.\n");
  return 0;
}
