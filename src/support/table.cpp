#include "support/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace apm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  APM_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  APM_CHECK_MSG(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::cout << "\n== " << title << " ==\n" << to_text();
  std::istringstream csv(to_csv());
  for (std::string line; std::getline(csv, line);)
    std::cout << "csv: " << line << '\n';
  std::cout.flush();
}

}  // namespace apm
