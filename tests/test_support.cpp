// Unit tests for the support substrate: spinlock, sync queue, thread pool,
// RNG, statistics, table rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>

#include "support/rng.hpp"
#include "support/spinlock.hpp"
#include "support/stats.hpp"
#include "support/sync_queue.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace apm {
namespace {

TEST(SpinLock, ProvidesMutualExclusion) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          std::lock_guard guard(lock);
          ++counter;
        }
      });
    }
  }
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SyncQueue, FifoOrder) {
  SyncQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SyncQueue, BoundedTryPushFailsWhenFull) {
  SyncQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(SyncQueue, CloseDrainsThenReturnsNullopt) {
  SyncQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(SyncQueue, MpmcStressConservesItems) {
  SyncQueue<int> q(64);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 5000;
  std::atomic<long> sum{0};
  std::atomic<int> consumed{0};
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&q, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(q.push(p * kPerProducer + i));
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (consumed.load() < kProducers * kPerProducer) {
          if (auto v = q.try_pop()) {
            sum.fetch_add(*v);
            consumed.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
  }
  const long n = static_cast<long>(kProducers) * kPerProducer;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, FuturesReturnValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit_with_result([] { return 6 * 7; });
  auto f2 = pool.submit_with_result([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, SplitStreamsDiffer) {
  Rng parent(77);
  Rng child = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child(), child2());
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(31);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(SampleStats, MomentsAndPercentiles) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);
}

TEST(SampleStats, ClearResets) {
  SampleStats s;
  s.add(10.0);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"a", "bee"});
  t.add_row({"1", "2"});
  t.add_row({"33", "4"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| a  | bee |"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,bee\n1,2\n33,4\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace apm
