#pragma once
// Chrome trace-event JSON exporter: serialises a TraceSnapshot into the
// format Perfetto / chrome://tracing load directly.
//
// Mapping (one JSON object per event, "traceEvents" array form):
//   kSpan    → "ph":"X" complete events with ts + dur
//   kInstant → "ph":"i" thread-scoped instants ("s":"t")
//   kCounter → "ph":"C" counter tracks
// plus one "ph":"M" thread_name metadata record per named thread and a
// process_name record for the whole capture. Timestamps are trace-clock
// nanoseconds converted to the format's microseconds (double, so sub-µs
// resolution survives). pid is fixed at 1; tid is the recorder's
// registration order, which makes worker lanes sort stably in the UI.

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace apm::obs {

// Writes the snapshot as a complete JSON document. Never throws; stream
// state reports I/O failure.
void write_chrome_trace(std::ostream& out, const TraceSnapshot& snap);

// Convenience: snapshot-to-file. Returns false if the file cannot be
// opened or the write fails.
bool write_chrome_trace_file(const std::string& path,
                             const TraceSnapshot& snap);

}  // namespace apm::obs
