#pragma once
// In-tree operations shared by every search scheme: PUCT edge selection
// (Eq. 1), virtual-loss bookkeeping, node expansion and backup.
//
// Virtual loss follows the constant-VL variant [2] the paper describes in
// §2.1: while a rollout holds an edge, the edge behaves as if it had
// `virtual_loss` extra visits each returning a loss, lowering its U so
// concurrent workers diverge; the backup reverts it. With a single worker
// the VL is applied and reverted within one rollout and never observed, so
// serial search is unaffected — all schemes share this code path.

#include <cstdint>
#include <vector>

#include "games/game.hpp"
#include "mcts/config.hpp"
#include "mcts/transposition.hpp"
#include "mcts/tree.hpp"
#include "support/rng.hpp"

namespace apm {

// What a descent ended on.
enum class DescendStatus {
  kLeaf,       // claimed an unexpanded node (state moved kLeaf→kExpanding)
  kTerminal,   // reached a terminal game state
  kCollision,  // hit a node another rollout is expanding (kBackout mode
               // only); virtual losses along the path were reverted
};

// How to treat a node that is currently being expanded by someone else.
enum class CollisionPolicy {
  kWait,     // spin/yield until expanded, then continue (shared-tree)
  kBackout,  // revert VL and report kCollision (local-tree master: waiting
             // would deadlock, because the master itself applies results)
};

struct DescendOutcome {
  DescendStatus status = DescendStatus::kLeaf;
  NodeId node = kNullNode;
  int depth = 0;
};

// Stateless algorithms over one SearchTree + config. Thread-safe: all
// mutation goes through the tree's atomics/locks.
class InTreeOps {
 public:
  InTreeOps(SearchTree& tree, const MctsConfig& cfg)
      : tree_(tree), cfg_(cfg) {}

  // Selects argmax_a U(s,a) among `node`'s edges (Eq. 1, with virtual
  // losses folded into N and Q). node must be expanded and have edges.
  EdgeId select_edge(NodeId node) const;

  // Walks from the root following select_edge, applying virtual loss and
  // the corresponding game moves, until reaching an unexpanded node, a
  // terminal state, or a collision. On kLeaf return, the leaf is claimed
  // (state == kExpanding) and `game` holds the leaf position.
  DescendOutcome descend(Game& game, CollisionPolicy policy);

  // Creates `node`'s edges from the legal actions of the (leaf) position
  // and the evaluator policy (masked to legal actions and renormalised),
  // then publishes state = kExpanded. The caller must have claimed the
  // node. `noise_rng` != nullptr additionally mixes Dirichlet noise into
  // the priors (root expansion during self-play).
  void expand(NodeId node, const Game& game, const std::vector<float>& policy,
              Rng* noise_rng = nullptr);

  // Same as expand(), but from a pre-captured legal-action list (the
  // local-tree master no longer holds the leaf's game state when the
  // evaluation completes).
  void expand_from_legal(NodeId node, const std::vector<int>& legal,
                         const std::vector<float>& policy,
                         Rng* noise_rng = nullptr);

  // Expands a claimed leaf from a transposition-table hit instead of a
  // fresh evaluation. kPriors installs the stored (action, prior) list
  // verbatim — identical to what expand() would have produced for the same
  // position under a deterministic evaluator. kStats additionally blends
  // the stored visit distribution into the priors and seeds each visited
  // edge with a single first-play-urgency visit carrying the TT mean,
  // pessimised by `hit.inflight` scaled virtual loss (positions still being
  // evaluated elsewhere shouldn't look artificially settled). Also records
  // the node's position memo (key + stored value) for later archiving.
  void expand_from_tt(NodeId node, std::uint64_t key, const TtView& hit,
                      GraftMode mode, float stats_blend);

  // Records the position memo (Zobrist eval_key + NN value) on a node the
  // caller has claimed (or just expanded): advance_root()'s archive pass
  // reads it to fold discarded subtrees into the transposition table.
  void note_eval(NodeId node, std::uint64_t key, float value);

  // Propagates `leaf_value` (value for the player to move at the leaf)
  // back to the root: along the path each edge gains one visit and the
  // value flips sign per level; virtual losses are reverted.
  void backup(NodeId leaf, float leaf_value);

  // Reverts virtual losses from `node` up to the root without recording a
  // visit (used when a rollout is abandoned).
  void revert_path(NodeId node);

  // Mixes fresh Dirichlet noise into the (already expanded) root's priors —
  // self-play exploration on a reused root, where expand() never runs. The
  // convex mix of two distributions stays normalised. No-op on an
  // unexpanded root.
  void mix_root_noise(Rng& rng);

  // Ensures edge->child exists, creating a leaf node under the parent's
  // lock on first use.
  NodeId get_or_create_child(NodeId parent, EdgeId edge_id);

  SearchTree& tree() { return tree_; }

 private:
  void apply_virtual_loss(EdgeId edge_id);

  SearchTree& tree_;
  const MctsConfig& cfg_;
};

// Evaluates root synchronously via `policy`/`value` already computed by the
// caller and prepares the tree root. Collects the per-move result out of
// root statistics.
SearchResult extract_result(const SearchTree& tree, int action_count);

// Samples a Dirichlet(alpha, ..., alpha) vector of size n into `out`.
void sample_dirichlet(Rng& rng, float alpha, std::size_t n,
                      std::vector<float>& out);

}  // namespace apm
