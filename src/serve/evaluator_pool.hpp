#pragma once
// Multi-model serving registry — one evaluation *lane* per named net.
//
// The PR-3/PR-4 serving stack shares ONE AsyncBatchEvaluator (and one
// EvalCache) across every game the MatchService runs, which works exactly
// as long as every game evaluates on the same network. A real serving
// front end hosts many nets at once — different games, different training
// generations, A/B pairs — and a request for net X must never be answered
// from net Y's batch or cache. The EvaluatorPool is that registry: each
// registered model owns a private lane of
//
//     InferenceBackend  (caller-owned: the net / sim-GPU that computes)
//       └ EvalCache     (per-net — the cache-keying caveat from ROADMAP:
//                        keys are Game::eval_key() *within one net*, so
//                        isolation comes from separate tables, not from
//                        salting the key)
//       └ AsyncBatchEvaluator (per-net queue: batches form across every
//                        game routed to this model, never across models)
//
// and the MatchService routes each game slot to its declared lane. Cross-
// game batching is preserved *within* a lane (K Gomoku games on net A still
// coalesce into net A's batches) while lanes stay fully isolated: separate
// thresholds, separate stats, separate invalidation.
//
// Per-model invalidation contract: invalidate(id) clears ONLY model id's
// search memory — its cache AND its shared transposition table (below). A
// weight update to one net (Trainer SGD between waves) makes that net's
// cached policies stale and nobody else's — the all-or-nothing
// EvalCache::clear() of PR 4 forced every model to pay for any model's
// update; with per-net caches a foreign update leaves a lane's residency
// and hit rate untouched (pinned by test_hetero, extended to TTs by
// test_shared_tt). Callers that cannot name the updated model fall back to
// invalidate_all().
//
// Lane-shared transposition table (ISSUE 9): a lane may additionally own
// one TranspositionTable (ModelSpec::tt.enabled), sized per lane and
// handed by the MatchService to EVERY SearchEngine its slots build for
// this lane — K concurrent games of the same net dedupe *expansions*
// across games exactly as the lane EvalCache dedupes NN calls, one layer
// deeper (a graft skips encode + queue + inference, not just inference).
// Lifecycle is lane-owned: engines never clear the shared table or write
// absolute epochs into its generation clock (they only bump it — see
// SearchResources::tt_shared); invalidate(id) clears it with the lane's
// cache because both memoise the lane's weights. TT entries are position
// memos of a deterministic evaluator, so cross-game residency is sound
// (the same argument as tt_keep_across_games, made structural), and under
// GraftMode::kPriors per-game results remain a pure function of the game
// seed — independent of worker count, of sharing, and of which sibling
// game warmed the table (pinned by test_shared_tt and bench/fig_cache).
//
// Per-lane precision contract: precision is a property of the LANE, not of
// the serving plane — declared at registration (ModelSpec::precision) and
// immutable afterwards, it simply labels what the caller-owned backend
// computes with (e.g. a NetEvaluator over a QuantizedPolicyValueNet for
// kInt8). Nothing else in the lane machinery branches on it: batching,
// caching, stats and stale-flush behave identically, and the Algorithm-4
// aggregate controller needs no precision plumbing at all — it re-tunes
// from backend.model_batch_us(b), so an int8 lane's cheaper measured cost
// flows into its thresholds automatically. Registering the same logical
// net twice at different precisions (e.g. "net" and "net-int8") yields two
// fully isolated lanes — separate queues, caches, thresholds — which is
// exactly what the match-play precision gate (serve/precision_gate.hpp)
// races against each other.
//
// invalidate(id) semantics are precision-INDEPENDENT: it clears the lane's
// cache because the lane's weights changed, whatever arithmetic the lane
// runs. After re-quantizing a net (new fp32 weights -> new int8 snapshot),
// invalidate the int8 lane exactly as you would an fp32 lane; a foreign
// lane at any precision is never touched.
//
// Threshold ownership: the pool constructs each queue at the spec's
// threshold; at runtime the AggregateController (serve/
// aggregate_controller.hpp) re-tunes each lane's threshold independently
// from that lane's measured arrival rate. Per-game engines never manage a
// pooled queue's threshold (MatchService forces manage_batch_threshold
// off, as with the PR-3 shared queue).
//
// Thread safety: registration is single-threaded setup (add_model before
// any service attaches); the lane accessors are const after that and the
// lanes themselves are internally synchronized (queue mutex, cache shard
// locks), so concurrent services/slots can submit/invalidate freely.

#include <memory>
#include <string>
#include <vector>

#include "eval/async_batch.hpp"
#include "eval/evaluator.hpp"
#include "mcts/transposition.hpp"
#include "obs/telemetry.hpp"

namespace apm {

// One named model's lane configuration. The backend must outlive the pool.
struct ModelSpec {
  std::string name;
  InferenceBackend* backend = nullptr;
  int batch_threshold = 4;
  int num_streams = 1;
  // Required > 0: pooled queues are multi-producer (liveness at game tails)
  double stale_flush_us = 1500.0;
  bool cache = true;  // false: no EvalCache in front of this lane
  EvalCacheConfig cache_cfg = {};
  // What the backend computes with (see the per-lane precision contract in
  // the header comment). Declarative: the pool never converts — the caller
  // registers a backend that already runs at this precision.
  Precision precision = Precision::kFp32;
  // tt.enabled builds the lane's shared TranspositionTable (header note).
  // tt.name is overwritten with the lane name so the table's trace
  // instants (tt_graft / tt_pending) carry it.
  TtConfig tt;
  // Latency objective for this lane's REQUEST latency (submit -> future
  // ready, the queue's request histogram). When enabled, the MatchService
  // owning this lane evaluates it every publish_metrics() window and
  // exports "service.<name>.health" (ISSUE 10). Declarative like
  // precision: the pool stores it, the service enforces it.
  obs::SloSpec slo;
};

// Point-in-time telemetry of one lane.
struct ModelLaneStats {
  int model_id = -1;
  std::string name;
  Precision precision = Precision::kFp32;
  int batch_threshold = 1;  // current (possibly re-tuned) threshold
  BatchQueueStats batch;    // lifetime queue counters
  CacheStats cache;         // zeros when the lane has no cache
  TtStatsSnapshot tt;       // zeros (capacity 0) without a lane TT
};

class EvaluatorPool {
 public:
  EvaluatorPool() = default;
  EvaluatorPool(const EvaluatorPool&) = delete;
  EvaluatorPool& operator=(const EvaluatorPool&) = delete;

  // Registers a model and returns its id (dense, starting at 0). Names must
  // be unique and non-empty. Call before attaching services.
  int add_model(const ModelSpec& spec);

  int model_count() const { return static_cast<int>(lanes_.size()); }
  // Id for a registered name; -1 when absent.
  int find(const std::string& name) const;
  const std::string& name(int id) const { return lane(id).name; }

  // The lane's declared precision (immutable after add_model).
  Precision precision(int id) const { return lane(id).precision; }

  // The lane's declared latency objective (immutable after add_model).
  const obs::SloSpec& slo(int id) const { return lane(id).slo; }

  AsyncBatchEvaluator& queue(int id) { return *lane(id).queue; }
  const AsyncBatchEvaluator& queue(int id) const { return *lane(id).queue; }
  InferenceBackend& backend(int id) { return *lane(id).backend; }
  // nullptr when the lane runs uncached.
  EvalCache* cache(int id) { return lane(id).cache.get(); }
  const EvalCache* cache(int id) const { return lane(id).cache.get(); }

  // The lane's shared transposition table; nullptr unless spec.tt.enabled.
  TranspositionTable* transposition(int id) { return lane(id).tt.get(); }
  const TranspositionTable* transposition(int id) const {
    return lane(id).tt.get();
  }

  // Clears ONLY model `id`'s search memory — its cache and its shared
  // transposition table (its weights changed). Other lanes' residency, hit
  // rates and in-flight batches are untouched.
  void invalidate(int id);
  // Clears every lane's cache/TT (caller cannot name the updated model).
  void invalidate_all();

  // Drains every lane's queue (end-of-wave barrier across models).
  void drain_all();

  ModelLaneStats lane_stats(int id) const;

 private:
  struct Lane {
    std::string name;
    InferenceBackend* backend = nullptr;
    Precision precision = Precision::kFp32;
    obs::SloSpec slo;
    // Declaration order is the destruction contract: the queue is destroyed
    // (and drains) before the cache it points at. The TT has no queue
    // dependency — engines reference it directly and must be destroyed
    // before the pool (MatchService slots retire before the pool dies).
    std::unique_ptr<TranspositionTable> tt;
    std::unique_ptr<EvalCache> cache;
    std::unique_ptr<AsyncBatchEvaluator> queue;
  };

  Lane& lane(int id) { return *lanes_.at(static_cast<std::size_t>(id)); }
  const Lane& lane(int id) const {
    return *lanes_.at(static_cast<std::size_t>(id));
  }

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace apm
