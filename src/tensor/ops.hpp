#pragma once
// Tensor kernels: packed register-blocked GEMM, im2col/col2im, activations,
// softmax.
//
// Layout contracts (all row-major):
//   gemm        : C[M,N] (+)= A[M,K] * B[K,N]
//   gemm_atb    : C[M,N] (+)= A[K,M]^T * B[K,N]
//   gemm_abt    : C[M,N] (+)= A[M,K] * B[N,K]^T
// These three cover forward, weight-gradient and input-gradient passes of
// both Linear and (via im2col) Conv2d without materialising transposes.
//
// The gemm/gemm_atb family runs on one shared driver: A and B are packed
// into L1-resident panels and consumed by a 4x16 register-blocked
// micro-kernel (MR x NR accumulators held across the whole K loop, no
// per-element branches). The driver optionally
//   * fuses a per-row bias broadcast and a ReLU into the store epilogue
//     (one pass over C instead of GEMM + bias pass + ReLU pass), and
//   * shards M row-blocks across a ThreadPool (ParallelGemm). Each output
//     element is produced by exactly one thread with the identical blocking
//     and accumulation order as the serial path, so threaded and serial
//     results are bitwise equal.
//
// The gemm_q8 family is the int8 inference path hosted by the same driver
// skeleton: weights arrive pre-quantized (symmetric per-output-channel
// int8, quantize_rows_int8), activations are quantized to unsigned 8-bit
// during the pack step with an asymmetric per-(K-block, lane) min/scale,
// the 4x16 micro-kernel widen-accumulates u8 x s8 products into int32
// (AVX-512 VNNI vpdpbusd when available, exact scalar otherwise), and the
// dequantization — plus the same fused bias/ReLU — happens in the store
// epilogue. Integer accumulation is exact and the per-element dequant
// order is independent of sharding, so int8 results are bitwise identical
// across thread counts AND across the SIMD/scalar kernels.

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace apm {

class ThreadPool;

// --- GEMM family -----------------------------------------------------------

// C[M,N] op= A[M,K]*B[K,N]; op is += when accumulate, = otherwise.
void gemm(const float* a, const float* b, float* c, int m, int n, int k,
          bool accumulate);

// ParallelGemm: same contract as gemm(); row-blocks of C are sharded across
// `pool` (nullptr falls back to the serial path). Bitwise deterministic
// versus the serial result. Regression guard: worker fan-out is capped at
// hardware_concurrency() and the call degenerates to the serial path when
// the problem is too small to give every shard a useful FLOP budget — the
// pool can only ever help, never hurt (the BENCH_gemm t2/t4-slower-than-t1
// anomaly on a 1-core host).
void gemm_parallel(ThreadPool* pool, const float* a, const float* b, float* c,
                   int m, int n, int k, bool accumulate);

// Fused epilogue: C[M,N] = A[M,K]*B[K,N] + bias[i] (broadcast along the
// row), then ReLU when `relu`. `bias` may be nullptr (no bias). This is the
// convolution forward shape, where row i is output channel i.
void gemm_bias_relu(const float* a, const float* b, const float* bias,
                    float* c, int m, int n, int k, bool relu);

// ParallelGemm variant of the fused kernel.
void gemm_bias_relu_parallel(ThreadPool* pool, const float* a, const float* b,
                             const float* bias, float* c, int m, int n, int k,
                             bool relu);

// C[M,N] op= A[K,M]^T * B[K,N].
void gemm_atb(const float* a, const float* b, float* c, int m, int n, int k,
              bool accumulate);

// C[M,N] op= A[M,K] * B[N,K]^T.
void gemm_abt(const float* a, const float* b, float* c, int m, int n, int k,
              bool accumulate);

// Fused linear-layer forward: C[M,N] = A[M,K]*B[N,K]^T + bias[j] (broadcast
// down the column, i.e. per output feature), then ReLU when `relu`. `bias`
// may be nullptr.
void gemm_abt_bias_relu(const float* a, const float* b, const float* bias,
                        float* c, int m, int n, int k, bool relu);

// --- int8 quantized GEMM family ---------------------------------------------

// Symmetric per-row int8 weight quantization: wq[r][p] = round(w[r][p] /
// scales[r]) with scales[r] = max|w[r]| / 127 (rows of all zeros get scale
// 1). Row r is an output channel in both conv ([Cout, Cin*k*k]) and linear
// ([Out, In]) weight layouts, so this is the per-output-channel pass the
// fp32 -> int8 net conversion runs once per layer.
void quantize_rows_int8(const float* w, int rows, int k, std::int8_t* wq,
                        float* scales);

// Quantized convolution-forward shape: C[M,N] = dequant(Wq[M,K] * q8(B[K,N]))
// + bias[row i], then ReLU when `relu`. Wq/wscales from quantize_rows_int8;
// B (the im2col activations) is quantized on the fly during the pack step.
// `bias` may be nullptr. `pool` shards like gemm_parallel (nullptr = serial);
// results are bitwise identical for every pool size.
void gemm_q8_bias_relu(ThreadPool* pool, const std::int8_t* wq,
                       const float* wscales, const float* b,
                       const float* bias, float* c, int m, int n, int k,
                       bool relu);

// Quantized linear-forward shape: C[M,N] = dequant(q8(A[M,K]) * Wq[N,K]^T)
// + bias[col j], then ReLU when `relu`. A (the activations) is quantized on
// the fly; Wq holds the [Out, In] weight rows as int8.
void gemm_q8_abt_bias_relu(ThreadPool* pool, const float* a,
                           const std::int8_t* wq, const float* wscales,
                           const float* bias, float* c, int m, int n, int k,
                           bool relu);

// True when the AVX-512 VNNI micro-kernel is compiled in (the scalar
// fallback computes bit-identical results, only slower).
bool gemm_q8_simd_enabled();

// Test/bench override for the ParallelGemm worker cap (normally
// hardware_concurrency()): > 0 pretends the host has that many cores, 0
// restores auto-detection. Lets the sharded code paths run on a 1-core CI
// host, where the regression guard would otherwise serialise every GEMM.
void set_gemm_worker_cap_for_testing(int cap);

// --- convolution lowering ---------------------------------------------------

// Lowers one image x[C,H,W] to columns col[C*k*k, H*W] for a k×k
// convolution with `pad` zero padding and stride 1 (output spatial size
// equals input spatial size when pad == k/2, which is all this library
// uses).
void im2col(const float* x, int channels, int height, int width, int ksize,
            int pad, float* col);

// Whole-batch lowering: x[B,C,H,W] -> col[C*k*k, B*H*W] with column index
// b*H*W + oy*W + ox. One call feeds a single large GEMM covering the entire
// batch (N = B·H·W) instead of B tiny per-sample GEMMs.
void im2col_batched(const float* x, int batch, int channels, int height,
                    int width, int ksize, int pad, float* col);

// Adjoint of im2col: accumulates columns back into dx[C,H,W]. dx must be
// zeroed by the caller.
void col2im(const float* col, int channels, int height, int width, int ksize,
            int pad, float* dx);

// --- element-wise -----------------------------------------------------------

void relu_forward(const float* x, float* y, std::size_t n);
// dx = dy where x > 0 else 0 (accumulates into dx when accumulate).
void relu_backward(const float* x, const float* dy, float* dx, std::size_t n,
                   bool accumulate);

void tanh_forward(const float* x, float* y, std::size_t n);
// dx = dy * (1 - y^2).
void tanh_backward(const float* y, const float* dy, float* dx, std::size_t n);

// y += x
void axpy(float alpha, const float* x, float* y, std::size_t n);

// --- softmax ----------------------------------------------------------------

// Row-wise softmax: x[rows, cols] -> y[rows, cols]. Numerically stable.
void softmax_rows(const float* x, float* y, int rows, int cols);

// Row-wise log-softmax.
void log_softmax_rows(const float* x, float* y, int rows, int cols);

// --- reductions --------------------------------------------------------------

float sum(const float* x, std::size_t n);
float dot(const float* a, const float* b, std::size_t n);
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace apm
