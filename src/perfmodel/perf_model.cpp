#include "perfmodel/perf_model.hpp"

#include <algorithm>
#include <sstream>

#include "perfmodel/batch_search.hpp"
#include "support/check.hpp"

namespace apm {

std::string AdaptiveDecision::to_string() const {
  std::ostringstream out;
  out << apm::to_string(scheme) << " (N=" << workers;
  if (batch_size > 1) out << ", B=" << batch_size;
  out << ", shared=" << predicted_shared_us
      << "us, local=" << predicted_local_us << "us)";
  return out.str();
}

double PerfModel::shared_intree_us() const {
  // Per-iteration in-tree compute of one worker. Eq. 3 writes
  // T_select + T_backup; expansion runs on the same worker thread between
  // them, so it belongs to the same per-iteration constant.
  return costs_.t_select_us + costs_.t_expand_us + costs_.t_backup_us;
}

double PerfModel::local_intree_us() const {
  // The local-tree master performs selection, expansion and backup for
  // every iteration. The profiler measures on a DDR-cold synthetic tree;
  // when the tree fits in LLC the per-level memory cost drops from ddr to
  // llc latency (§3.1.2).
  const double levels = costs_.mean_depth;
  const bool cache_resident =
      costs_.tree_bytes == 0 || costs_.tree_bytes <= hw_.llc_bytes;
  const double adjust =
      cache_resident ? levels * (hw_.ddr_access_us - hw_.llc_access_us) : 0.0;
  return std::max(0.0, costs_.t_select_us + costs_.t_expand_us +
                           costs_.t_backup_us - adjust);
}

double PerfModel::eval_miss_rate() const {
  // Cache and TT compound: a TT graft never produces a request, and of the
  // requests that remain, a cache hit costs no backend work.
  return std::clamp(
      (1.0 - costs_.cache_hit_rate) * (1.0 - costs_.tt_graft_rate), 0.0, 1.0);
}

double PerfModel::shared_cpu_wave_us(int n) const {
  APM_CHECK(n >= 1);
  return costs_.t_shared_access_us * n + shared_intree_us() +
         costs_.t_dnn_cpu_us * eval_miss_rate();
}

double PerfModel::shared_gpu_wave_us(int n) const {
  APM_CHECK(n >= 1);
  return costs_.t_shared_access_us * n + shared_intree_us() +
         hw_.gpu.batch_total_us(n) * eval_miss_rate();
}

double PerfModel::local_cpu_wave_us(int n) const {
  APM_CHECK(n >= 1);
  return std::max(local_intree_us() * n,
                  costs_.t_dnn_cpu_us * eval_miss_rate());
}

double PerfModel::local_gpu_wave_us(int n, int b) const {
  APM_CHECK(n >= 1);
  APM_CHECK(b >= 1 && b <= n);
  // Eq. 6: the three overlapped resources — master-thread in-tree ops,
  // the PCIe link moving N samples in N/B transfers, and the GPU computing
  // sub-batches of size B (N/B streams). Cached requests skip both the
  // link and the kernel, so those two resources see only the miss traffic.
  const double miss = eval_miss_rate();
  const double intree = local_intree_us() * n;
  const double pcie = hw_.gpu.pcie_total_us(n, b) * miss;
  const int streams = std::max(1, n / std::max(1, b));
  // Each stream computes its sub-batch; streams serialize on the single
  // GPU, but sub-batch compute overlaps the next transfer, so the bound is
  // the total compute divided by the overlap factor of 1 (conservative:
  // all N/B kernels run back to back).
  const double gpu_compute = hw_.gpu.compute_us(b) * streams * miss;
  return std::max({intree, pcie, gpu_compute});
}

AdaptiveDecision PerfModel::decide_cpu(int n) const {
  AdaptiveDecision d;
  d.workers = n;
  d.batch_size = 1;
  d.predicted_shared_us = shared_cpu_us(n);
  d.predicted_local_us = local_cpu_us(n);
  d.scheme = d.predicted_local_us <= d.predicted_shared_us
                 ? Scheme::kLocalTree
                 : Scheme::kSharedTree;
  const double best = std::min(d.predicted_shared_us, d.predicted_local_us);
  const double worst = std::max(d.predicted_shared_us, d.predicted_local_us);
  d.speedup_vs_worst = best > 0.0 ? worst / best : 1.0;
  return d;
}

AdaptiveDecision PerfModel::decide_gpu(
    int n, const std::function<double(int)>& probe_us) const {
  AdaptiveDecision d;
  d.workers = n;
  d.predicted_shared_us = shared_gpu_us(n);

  // Local tree: tune B with Algorithm 4, over the model or a measured probe.
  const auto model_probe = [this, n](int b) { return local_gpu_us(n, b); };
  const BatchSearchResult found =
      find_min_batch(n, probe_us ? probe_us : model_probe);
  d.predicted_local_us = found.best_latency_us;

  if (d.predicted_local_us <= d.predicted_shared_us) {
    d.scheme = Scheme::kLocalTree;
    d.batch_size = found.best_batch;
  } else {
    d.scheme = Scheme::kSharedTree;
    d.batch_size = n;  // §3.3: shared-tree batch is always N
  }
  const double best = std::min(d.predicted_shared_us, d.predicted_local_us);
  const double worst = std::max(d.predicted_shared_us, d.predicted_local_us);
  d.speedup_vs_worst = best > 0.0 ? worst / best : 1.0;
  return d;
}

}  // namespace apm
