#pragma once
// Hardware and algorithm specifications — the inputs of the
// design-configuration workflow (§4.2).

#include <cstddef>

#include "eval/gpu_model.hpp"

namespace apm {

// Multi-core CPU + optional accelerator description. Defaults model the
// paper's testbed (AMD Threadripper 3990X + RTX A6000 over PCIe 4.0, §5.1);
// override for other targets.
struct HardwareSpec {
  int cpu_threads = 64;
  // Documented DDR access latency — the per-worker T_shared-tree-access of
  // Eqs. 3/4 (µs). ~90 ns loaded latency for DDR4 plus coherence traffic.
  double ddr_access_us = 0.12;
  // Last-level-cache hit latency (µs) — what the local-tree master pays
  // instead when the tree fits in LLC (§3.1.2).
  double llc_access_us = 0.018;
  std::size_t llc_bytes = 256ull << 20;
  // Per-core private L2 (Threadripper 3990X: 512 KB/core). Together with
  // the per-thread LLC share this bounds the cache-resident conv sub-batch
  // (see conv_col_budget_bytes below).
  std::size_t l2_bytes = 512ull << 10;
  // Threads reserved for CPU-side DNN training in the CPU-only platform
  // ("we are able to allocate 32 threads for conducting training", §5.4).
  int train_threads = 32;
  GpuTimingModel gpu;
};

// Cache budget for one inference thread's conv scratch (im2col chunk +
// pre-permute output): private L2 plus an even LLC share. Feed this into
// ConvWorkspace::col_budget_bytes so very large batches are lowered in
// cache-resident sub-batches instead of one monolithic col buffer.
inline std::size_t conv_col_budget_bytes(const HardwareSpec& hw) {
  const std::size_t llc_share =
      hw.llc_bytes / static_cast<std::size_t>(hw.cpu_threads > 0
                                                  ? hw.cpu_threads
                                                  : 1);
  const std::size_t budget = hw.l2_bytes + llc_share;
  return budget > (1u << 20) ? budget : (1u << 20);
}

// Per-benchmark algorithm hyper-parameters (the paper's "tree fanout, tree
// depth" model inputs).
struct AlgoSpec {
  int fanout = 225;        // actions per expansion (15×15 board)
  int depth = 16;          // typical selection depth per rollout
  int num_playouts = 1600; // iterations per move (§5.1)
  std::size_t state_bytes = 4 * 15 * 15 * sizeof(float);
};

}  // namespace apm
